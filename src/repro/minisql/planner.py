"""Access-path selection for minisql: sequential scan vs index scan.

The planner walks the conjuncts of a WHERE clause looking for constraints
an existing index can serve:

* ``Cmp(col, '=', v)`` on a column with a B-tree index → point index scan;
* ``Cmp(col, '<='|'<'|'>='|'>', v)`` on a B-tree column → range index scan
  (this is how the TTL sweeper finds expired rows);
* ``Contains(col, token)`` on a TEXT_LIST column with an inverted index →
  posting-list scan.

Whichever conjunct matched becomes the driving constraint; the *full*
predicate is always re-checked against fetched rows (residual filter), so
a wrong cardinality guess can never return wrong answers.  With several
candidates the planner prefers equality over contains over range —
PostgreSQL's selectivity ordering for this schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import ALWAYS, Cmp, Contains, Expr
from .schema import Catalog, IndexInfo

_RANGE_OPS = ("<", "<=", ">", ">=")
_PREFERENCE = {"eq": 0, "contains": 1, "range": 2}


@dataclass
class Plan:
    """The chosen access path for one statement."""

    kind: str                       # 'seqscan' | 'indexscan'
    table: str
    predicate: Expr
    index: IndexInfo | None = None
    op: str | None = None           # 'eq' | 'contains' | 'range'
    value: object = None            # constant for eq/contains
    lo: object = None               # bounds for range
    hi: object = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True
    #: True when the index lookup alone satisfies the whole predicate
    #: (single eq/contains conjunct, non-NULL constant): the executor may
    #: skip the residual re-check.  Only the cached planner sets this.
    exact: bool = False

    def describe(self) -> str:
        if self.kind == "seqscan":
            return f"SeqScan({self.table})"
        assert self.index is not None
        if self.op == "range":
            return (
                f"IndexScan({self.table} via {self.index.name}: "
                f"{self.lo!r}..{self.hi!r})"
            )
        return f"IndexScan({self.table} via {self.index.name}: {self.op} {self.value!r})"


def _candidates(predicate: Expr, indices_by_column: dict[str, IndexInfo]):
    for conjunct in predicate.conjuncts():
        if isinstance(conjunct, Cmp) and conjunct.column in indices_by_column:
            info = indices_by_column[conjunct.column]
            if info.kind != "btree":
                continue
            if conjunct.op == "=":
                yield "eq", conjunct, info
            elif conjunct.op in _RANGE_OPS:
                yield "range", conjunct, info
        elif isinstance(conjunct, Contains) and conjunct.column in indices_by_column:
            info = indices_by_column[conjunct.column]
            if info.kind == "inverted":
                yield "contains", conjunct, info


def plan_scan(catalog: Catalog, table: str, predicate: Expr | None) -> Plan:
    """Pick the cheapest access path for ``predicate`` on ``table``."""
    predicate = predicate if predicate is not None else ALWAYS
    indices_by_column = {info.column: info for info in catalog.indices_for(table)}
    best: tuple[int, str, Expr, IndexInfo] | None = None
    for op, conjunct, info in _candidates(predicate, indices_by_column):
        rank = _PREFERENCE[op]
        if best is None or rank < best[0]:
            best = (rank, op, conjunct, info)
    if best is None:
        return Plan(kind="seqscan", table=table, predicate=predicate)
    _, op, conjunct, info = best
    return _build_plan(table, predicate, op, conjunct, info)


def _build_plan(table: str, predicate: Expr, op: str, conjunct: Expr, info: IndexInfo) -> Plan:
    if op == "eq":
        return Plan(
            kind="indexscan", table=table, predicate=predicate,
            index=info, op="eq", value=conjunct.value,
        )
    if op == "contains":
        return Plan(
            kind="indexscan", table=table, predicate=predicate,
            index=info, op="contains", value=conjunct.token,
        )
    # range
    assert isinstance(conjunct, Cmp)
    plan = Plan(kind="indexscan", table=table, predicate=predicate, index=info, op="range")
    if conjunct.op in ("<", "<="):
        plan.hi = conjunct.value
        plan.hi_inclusive = conjunct.op == "<="
    else:
        plan.lo = conjunct.value
        plan.lo_inclusive = conjunct.op == ">="
    return plan


def _conjunct_shape(conjunct: Expr) -> tuple:
    """Structural key of a conjunct: what it constrains, not its constant."""
    if isinstance(conjunct, Cmp):
        return ("cmp", conjunct.column, conjunct.op)
    if isinstance(conjunct, Contains):
        return ("contains", conjunct.column)
    return ("opaque", type(conjunct).__name__)


class CatalogVersionedCache(dict):
    """A dict emptied whenever the catalog's DDL version moves.

    Every executor-side cache (plan shapes, projections, prepared point
    lookups) keys its validity off ``catalog.version``; this holds that
    check-and-clear rule in one place.  Call :meth:`sync` before reading.
    """

    def __init__(self, catalog: Catalog) -> None:
        super().__init__()
        self._catalog = catalog
        self._version = catalog.version

    def sync(self) -> None:
        if self._catalog.version != self._version:
            self.clear()
            self._version = self._catalog.version


class PlanCache:
    """Memoised access-path selection, keyed by predicate *shape*.

    Access-path choice depends only on which columns/operators a
    predicate's conjuncts constrain and on the catalog's indices — not on
    the constants.  Hot statement streams (point SELECTs in a pipelined
    batch) re-plan the same shape thousands of times; this cache reduces
    that to a dict lookup plus rebinding the constants.  Any DDL bumps
    ``catalog.version``, which empties the cache, so a cached choice can
    never outlive the indices it was made against.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        #: (table, shape) -> None (seqscan) or (conjunct position, op, IndexInfo)
        self._choices: CatalogVersionedCache = CatalogVersionedCache(catalog)

    def plan(self, table: str, predicate: Expr | None) -> Plan:
        predicate = predicate if predicate is not None else ALWAYS
        self._choices.sync()
        conjuncts = predicate.conjuncts()
        key = (table, tuple(_conjunct_shape(c) for c in conjuncts))
        try:
            choice = self._choices[key]
        except KeyError:
            choice = self._choose(table, conjuncts)
            self._choices[key] = choice
        if choice is None:
            return Plan(kind="seqscan", table=table, predicate=predicate)
        position, op, info = choice
        plan = _build_plan(table, predicate, op, conjuncts[position], info)
        # A lone eq/contains conjunct is answered exactly by its index
        # lookup (NULL constants excepted: SQL's three-valued logic says
        # ``col = NULL`` matches nothing, but a B-tree stores NULL keys).
        if len(conjuncts) == 1 and op in ("eq", "contains") and plan.value is not None:
            plan.exact = True
        return plan

    def _choose(self, table: str, conjuncts: list[Expr]) -> tuple | None:
        indices_by_column = {
            info.column: info for info in self._catalog.indices_for(table)
        }
        positions = {id(c): i for i, c in enumerate(conjuncts)}
        best: tuple[int, int, str, IndexInfo] | None = None
        for conjunct in conjuncts:
            for op, matched, info in _candidates(conjunct, indices_by_column):
                rank = _PREFERENCE[op]
                if best is None or rank < best[0]:
                    best = (rank, positions[id(matched)], op, info)
        if best is None:
            return None
        _, position, op, info = best
        return (position, op, info)
