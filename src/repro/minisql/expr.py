"""Predicate expression trees for minisql WHERE clauses.

Expressions evaluate against a positional row given the table schema.  The
planner inspects conjunctive trees for index-usable constraints (equality
on scalar columns, CONTAINS on TEXT_LIST columns, range bounds on scalars),
so each node also reports what it constrains.
"""

from __future__ import annotations

import fnmatch
import operator
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import SQLError

from .schema import TableSchema

_CMP_OPS: dict[str, Callable] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Expr:
    """Base class for predicate nodes."""

    def evaluate(self, row: tuple, schema: TableSchema) -> bool:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns the predicate touches."""
        raise NotImplementedError

    def conjuncts(self) -> list["Expr"]:
        """Flatten top-level ANDs into a list (self if not an AND)."""
        return [self]

    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Cmp(Expr):
    """column <op> constant comparison."""

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise SQLError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row, schema):
        actual = row[schema.column_index(self.column)]
        if actual is None:
            return False  # SQL three-valued logic: NULL compares unknown
        return _CMP_OPS[self.op](actual, self.value)

    def columns(self):
        return {self.column}


@dataclass(frozen=True)
class Contains(Expr):
    """TEXT_LIST column contains a token (minisql's ``@>`` / ANY)."""

    column: str
    token: str

    def evaluate(self, row, schema):
        actual = row[schema.column_index(self.column)]
        if actual is None:
            return False
        return self.token in actual

    def columns(self):
        return {self.column}


@dataclass(frozen=True)
class IsEmpty(Expr):
    """TEXT_LIST column is NULL or has no tokens (the paper's ∅)."""

    column: str

    def evaluate(self, row, schema):
        actual = row[schema.column_index(self.column)]
        return actual is None or len(actual) == 0

    def columns(self):
        return {self.column}


@dataclass(frozen=True)
class In(Expr):
    """column IN (v1, v2, ...)."""

    column: str
    values: tuple

    def evaluate(self, row, schema):
        actual = row[schema.column_index(self.column)]
        if actual is None:
            return False
        return actual in self.values

    def columns(self):
        return {self.column}


@dataclass(frozen=True)
class Like(Expr):
    """Glob-style pattern match on a TEXT column (``*`` and ``?``)."""

    column: str
    pattern: str

    def evaluate(self, row, schema):
        actual = row[schema.column_index(self.column)]
        if actual is None:
            return False
        return fnmatch.fnmatchcase(actual, self.pattern)

    def columns(self):
        return {self.column}


@dataclass(frozen=True)
class IsNull(Expr):
    column: str

    def evaluate(self, row, schema):
        return row[schema.column_index(self.column)] is None

    def columns(self):
        return {self.column}


class And(Expr):
    def __init__(self, *children: Expr) -> None:
        if not children:
            raise SQLError("AND needs at least one child")
        self.children = children

    def evaluate(self, row, schema):
        return all(c.evaluate(row, schema) for c in self.children)

    def columns(self):
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def conjuncts(self):
        out: list[Expr] = []
        for child in self.children:
            out.extend(child.conjuncts())
        return out

    def __repr__(self):
        return "And(%s)" % ", ".join(repr(c) for c in self.children)


class Or(Expr):
    def __init__(self, *children: Expr) -> None:
        if not children:
            raise SQLError("OR needs at least one child")
        self.children = children

    def evaluate(self, row, schema):
        return any(c.evaluate(row, schema) for c in self.children)

    def columns(self):
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def __repr__(self):
        return "Or(%s)" % ", ".join(repr(c) for c in self.children)


class Not(Expr):
    def __init__(self, child: Expr) -> None:
        self.child = child

    def evaluate(self, row, schema):
        return not self.child.evaluate(row, schema)

    def columns(self):
        return self.child.columns()

    def __repr__(self):
        return f"Not({self.child!r})"


class TrueExpr(Expr):
    """Matches every row; the implicit WHERE of an unfiltered statement."""

    def evaluate(self, row, schema):
        return True

    def columns(self):
        return set()

    def __repr__(self):
        return "TrueExpr()"


ALWAYS = TrueExpr()
