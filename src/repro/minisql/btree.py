"""B+tree secondary index for minisql.

A real tree, not a sorted dict: inserts split nodes, lookups descend from
the root, range scans walk the leaf chain.  This matters for the paper's
Figure 3b — the cost the paper measures is PostgreSQL maintaining k B-trees
on every write, so index maintenance here must do genuine O(log n) node
work per index per write.

The tree is a multimap: each key maps to a list of row ids, since GDPR
metadata columns (purpose, user, ...) are highly non-unique.  Deletion is
lazy: entries are removed from leaves, but underfull leaves are not merged
(PostgreSQL similarly leaves pages half-empty until vacuum).
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.common.errors import ConstraintError

ORDER = 64  # max children per internal node / max keys per leaf


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list = []
        self.values: list[list[int]] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list = []          # separator keys, len == len(children) - 1
        self.children: list = []


class BTreeIndex:
    """Multimap B+tree: key -> [row ids]."""

    def __init__(self, unique: bool = False) -> None:
        self.unique = unique
        self._root = _Leaf()
        self._entries = 0     # number of (key, rid) pairs
        self._distinct = 0    # number of distinct keys
        self._height = 1
        self._node_count = 1
        #: seqlock generation for lock-free MVCC readers: writers bump it
        #: to odd before mutating and back to even after, so an optimistic
        #: reader can detect (and retry past) a concurrent node split.
        self.version = 0

    # -- stats -----------------------------------------------------------

    def __len__(self) -> int:
        return self._entries

    @property
    def distinct_keys(self) -> int:
        return self._distinct

    @property
    def height(self) -> int:
        return self._height

    def size_bytes(self) -> int:
        """Approximate footprint: 16B per slot plus page headers."""
        return self._node_count * 64 + self._entries * 16 + self._distinct * 16

    # -- search ----------------------------------------------------------

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key) -> list[int]:
        """Row ids for ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range_scan(self, lo=None, hi=None, inclusive: tuple[bool, bool] = (True, True)) -> Iterator[tuple[object, int]]:
        """Yield (key, rid) for keys in [lo, hi] walking the leaf chain."""
        if lo is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(lo)
            idx = bisect.bisect_left(leaf.keys, lo)
            if inclusive[0] is False:
                while idx < len(leaf.keys) and leaf.keys[idx] == lo:
                    idx += 1
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None:
                    if inclusive[1]:
                        if key > hi:
                            return
                    elif key >= hi:
                        return
                for rid in leaf.values[idx]:
                    yield key, rid
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[tuple[object, list[int]]]:
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            for key, rids in zip(leaf.keys, leaf.values):
                yield key, list(rids)
            leaf = leaf.next

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    # -- insert ----------------------------------------------------------

    def insert(self, key, rid: int) -> None:
        """Add one (key, rid) pair; splits nodes on the way up as needed."""
        if key is None:
            return  # NULLs are not indexed, as in PostgreSQL
        split = self._insert_into(self._root, key, rid)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._node_count += 1

    def _insert_into(self, node, key, rid: int):
        if isinstance(node, _Leaf):
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if self.unique:
                    raise ConstraintError(f"duplicate key {key!r} in unique index")
                node.values[idx].append(rid)
                self._entries += 1
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [rid])
            self._entries += 1
            self._distinct += 1
            if len(node.keys) > ORDER:
                return self._split_leaf(node)
            return None
        # internal
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, rid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) > ORDER:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self._node_count += 1
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.children) // 2
        sep = node.keys[mid - 1]
        right = _Internal()
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        self._node_count += 1
        return sep, right

    # -- delete ----------------------------------------------------------

    def remove(self, key, rid: int) -> bool:
        """Remove one (key, rid) pair; returns True if it was present."""
        if key is None:
            return False
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        rids = leaf.values[idx]
        try:
            rids.remove(rid)
        except ValueError:
            return False
        self._entries -= 1
        if not rids:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            self._distinct -= 1
        return True


class InvertedIndex:
    """Token index for TEXT_LIST columns — minisql's GIN analogue.

    Maps each token of a multi-valued attribute to the set of row ids whose
    attribute contains it; this is what makes CONTAINS predicates on GDPR
    metadata (purpose, objections, sharing) index-assisted in Figure 5c.
    """

    def __init__(self) -> None:
        self._postings: dict[str, set[int]] = {}
        self._entries = 0
        #: seqlock generation (see :class:`BTreeIndex.version`)
        self.version = 0

    def __len__(self) -> int:
        return self._entries

    @property
    def distinct_keys(self) -> int:
        return len(self._postings)

    def size_bytes(self) -> int:
        return sum(len(t.encode()) + 16 + 16 * len(p) for t, p in self._postings.items())

    def insert(self, tokens, rid: int) -> None:
        if tokens is None:
            return
        for token in tokens:
            postings = self._postings.setdefault(token, set())
            if rid not in postings:
                postings.add(rid)
                self._entries += 1

    def remove(self, tokens, rid: int) -> bool:
        if tokens is None:
            return False
        removed = False
        for token in tokens:
            postings = self._postings.get(token)
            if postings and rid in postings:
                postings.remove(rid)
                self._entries -= 1
                removed = True
                if not postings:
                    del self._postings[token]
        return removed

    def search(self, token: str) -> list[int]:
        return sorted(self._postings.get(token, ()))
