"""Column types for the minisql engine.

A deliberately small but strict type system: INTEGER, FLOAT, TEXT, BYTES,
TIMESTAMP (float seconds) and TEXT_LIST (comma-separated multi-valued
attribute, the shape GDPR metadata such as purposes and sharing lists
take).  Values are validated on INSERT/UPDATE, mirroring PostgreSQL's
strictness, and each type knows its approximate on-disk width so the
engine can answer the Table-3 space questions.
"""

from __future__ import annotations

from repro.common.errors import TypeMismatchError


class SQLType:
    """Base class: validation + storage sizing for one column type."""

    name = "unknown"

    def validate(self, value):
        """Return the canonical stored form of ``value`` or raise."""
        raise NotImplementedError

    def storage_bytes(self, value) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.name


class IntegerType(SQLType):
    name = "INTEGER"

    def validate(self, value):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"expected INTEGER, got {value!r}")
        return value

    def storage_bytes(self, value) -> int:
        return 8


class FloatType(SQLType):
    name = "FLOAT"

    def validate(self, value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"expected FLOAT, got {value!r}")
        return float(value)

    def storage_bytes(self, value) -> int:
        return 8


class TextType(SQLType):
    name = "TEXT"

    def validate(self, value):
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected TEXT, got {value!r}")
        return value

    def storage_bytes(self, value) -> int:
        return 4 + len(value.encode())


class BytesType(SQLType):
    name = "BYTES"

    def validate(self, value):
        if not isinstance(value, (bytes, bytearray)):
            raise TypeMismatchError(f"expected BYTES, got {value!r}")
        return bytes(value)

    def storage_bytes(self, value) -> int:
        return 4 + len(value)


class TimestampType(SQLType):
    """Absolute instant in engine-clock seconds; NULL-friendly deadline."""

    name = "TIMESTAMP"

    def validate(self, value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"expected TIMESTAMP, got {value!r}")
        return float(value)

    def storage_bytes(self, value) -> int:
        return 8


class TextListType(SQLType):
    """Multi-valued text attribute stored as a tuple of tokens.

    This is minisql's equivalent of a PostgreSQL text[] column; GDPR
    metadata fields like purposes, objections and sharing lists use it.
    Accepts a list/tuple of strings or a single comma-separated string.
    """

    name = "TEXT_LIST"

    def validate(self, value):
        if isinstance(value, str):
            tokens = tuple(t for t in value.split(",") if t)
        elif isinstance(value, (list, tuple)):
            tokens = tuple(value)
        else:
            raise TypeMismatchError(f"expected TEXT_LIST, got {value!r}")
        for token in tokens:
            if not isinstance(token, str):
                raise TypeMismatchError(f"TEXT_LIST token must be str, got {token!r}")
            if "," in token:
                raise TypeMismatchError(f"TEXT_LIST token may not contain ',': {token!r}")
        return tokens

    def storage_bytes(self, value) -> int:
        return 4 + sum(4 + len(t.encode()) for t in value)


INTEGER = IntegerType()
FLOAT = FloatType()
TEXT = TextType()
BYTES = BytesType()
TIMESTAMP = TimestampType()
TEXT_LIST = TextListType()

_BY_NAME = {
    t.name: t for t in (INTEGER, FLOAT, TEXT, BYTES, TIMESTAMP, TEXT_LIST)
}


def type_by_name(name: str) -> SQLType:
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown type {name!r}") from None
