"""Statement execution for minisql: plan → rows.

The middle layer of the engine's split.  An :class:`Executor` turns logical
statements (select/count/aggregate/insert/update/delete) into physical
operations on a :class:`~repro.minisql.storage.Storage`.  It owns the
per-statement query machinery — access-path selection (with a shape-keyed
plan cache), residual predicate filtering, projection, ordering, and the
MVCC update protocol — and nothing else: locking, statement accounting,
audit logging, and maintenance all live in the layers above.

Read methods take an optional snapshot timestamp ``at``:

* ``at=None`` — *latest* read: exactly the live heap rows.  Used by the
  lock-based modes (the caller holds the table's shared lock) and by
  writers reading their own tables (the caller holds the write lock).
* ``at=ts`` — *snapshot* read: the row versions visible to an MVCC
  snapshot at ``ts`` (see :mod:`repro.minisql.mvcc`), taken **without any
  table lock**.  Index accesses are wrapped in the storage layer's
  per-table latch so B-tree node splits never tear under a concurrent
  lock-free descent; the latch is held per index operation, never across
  a statement.

For the write methods the caller must hold the table's exclusive lock in
every mode; the executor never acquires locks itself.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Mapping, Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import SQLError

from .btree import BTreeIndex
from .expr import ALWAYS, Expr
from .planner import CatalogVersionedCache, Plan, PlanCache
from .schema import TableSchema
from .storage import Storage


class Executor:
    """Plan and run statements against one storage instance."""

    #: aggregate name -> (fold over non-NULL values)
    AGGREGATES = {
        "count": lambda values: len(values),
        "sum": lambda values: sum(values) if values else None,
        "min": lambda values: min(values) if values else None,
        "max": lambda values: max(values) if values else None,
        "avg": lambda values: (sum(values) / len(values)) if values else None,
    }

    def __init__(self, storage: Storage, clock: Clock | None = None) -> None:
        self.storage = storage
        self.clock = clock or SystemClock()
        self._plans = PlanCache(storage.catalog)
        #: (table, columns tuple | None) -> (names, column indices);
        #: versioned like the plan cache so DDL invalidates it.
        self._projections: CatalogVersionedCache = CatalogVersionedCache(storage.catalog)
        #: (table, column, columns) -> (index, names, idxs, col_idx);
        #: the prepared point-lookup cache (see :meth:`select_point`).
        self._points: CatalogVersionedCache = CatalogVersionedCache(storage.catalog)

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def plan(self, table: str, where: Expr | None) -> Plan:
        return self._plans.plan(table, where)

    def _plan_rows(self, plan: Plan, at: float | None = None) -> Iterator[tuple[int, tuple]]:
        """Yield candidate (rid, row) pairs for a plan, pre-residual."""
        heap = self.storage.heaps[plan.table]
        if plan.kind == "seqscan":
            yield from (heap.scan() if at is None else heap.scan_at(at))
            return
        assert plan.index is not None
        index = self.storage.indices[plan.index.name]
        if plan.op in ("eq", "contains"):
            if at is None:
                rids: Iterable[int] = index.search(plan.value)
            else:
                rids = self.storage.index_read(
                    plan.table, index, lambda: index.search(plan.value)
                )
        else:  # range
            assert isinstance(index, BTreeIndex)

            def scan_rids() -> list[int]:
                return [
                    rid
                    for _, rid in index.range_scan(
                        plan.lo, plan.hi, inclusive=(plan.lo_inclusive, plan.hi_inclusive)
                    )
                ]

            rids = scan_rids() if at is None else self.storage.index_read(
                plan.table, index, scan_rids
            )
        yield from (heap.fetch_many(rids) if at is None else heap.fetch_many_at(rids, at))

    def matching(
        self, table: str, where: Expr | None, limit: int | None = None,
        at: float | None = None,
    ) -> tuple[list[tuple[int, tuple]], Plan]:
        """(rid, row) pairs satisfying ``where``, and the plan that drove it.

        ``limit`` stops collecting after that many matches — the chunked
        paths (TTL sweeps, limited DELETE) use it so a bounded batch never
        pays for materialising every match.  ``at`` selects snapshot
        visibility (see the module docstring).
        """
        plan = self._plans.plan(table, where)
        if plan.exact:
            # The index lookup satisfies the whole predicate: no residual.
            rows = self._plan_rows(plan, at)
            matches = list(rows if limit is None else islice(rows, limit))
            return matches, plan
        schema = self.storage.catalog.table(table)
        predicate = where if where is not None else ALWAYS
        matches = []
        for rid, row in self._plan_rows(plan, at):
            if predicate.evaluate(row, schema):
                matches.append((rid, row))
                if limit is not None and len(matches) >= limit:
                    break
        return matches, plan

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None,
                     at: float | None = None) -> list[dict]:
        """Prepared point lookup: ``SELECT <columns> WHERE column = value``.

        The per-statement machinery (predicate tree, plan construction,
        residual filter) is resolved once per (table, column, projection)
        and cached — the prepared-statement path a real SQL client uses
        for its hot point reads.  Falls back to the general path when no
        B-tree index covers ``column``.
        """
        if value is None:
            return []  # SQL three-valued logic: col = NULL matches nothing
        catalog = self.storage.catalog
        self._points.sync()
        key = (table, column, tuple(columns) if columns is not None else None)
        prepared = self._points.get(key)
        if prepared is None:
            schema = catalog.table(table)
            names, idxs = self._projection(table, schema, columns)
            index = None
            for info in catalog.indices_for(table):
                if info.column == column and info.kind == "btree":
                    index = self.storage.indices[info.name]
                    break
            prepared = (index, names, idxs, schema.column_index(column))
            self._points[key] = prepared
        index, names, idxs, col_idx = prepared
        heap = self.storage.heaps[table]
        if index is not None:
            if at is None:
                rids = index.search(value)
            else:
                # One inlined optimistic attempt (no closure allocation on
                # the hot point-read path); any miss delegates to the full
                # seqlock retry protocol in Storage.index_read.
                version = index.version
                try:
                    rids = index.search(value)
                    clean = not (version & 1) and index.version == version
                except Exception:
                    clean = False
                if not clean:
                    rids = self.storage.index_read(
                        table, index, lambda: index.search(value)
                    )
            pairs = heap.fetch_many(rids) if at is None else heap.fetch_many_at(rids, at)
        elif at is None:
            pairs = ((rid, row) for rid, row in heap.scan() if row[col_idx] == value)
        else:
            pairs = ((rid, row) for rid, row in heap.scan_at(at) if row[col_idx] == value)
        return [
            {name: row[idx] for name, idx in zip(names, idxs)}
            for _, row in pairs
        ]

    def _projection(self, table: str, schema: TableSchema,
                    columns: Sequence[str] | None) -> tuple[list[str], list[int]]:
        self._projections.sync()
        key = (table, tuple(columns) if columns is not None else None)
        try:
            return self._projections[key]
        except KeyError:
            names = list(columns) if columns is not None else schema.column_names()
            idxs = [schema.column_index(name) for name in names]  # validates
            self._projections[key] = (names, idxs)
            return names, idxs

    # ------------------------------------------------------------------
    # Read statements (caller holds the table's read lock, or passes a
    # snapshot timestamp and holds nothing)
    # ------------------------------------------------------------------

    def select(
        self,
        table: str,
        where: Expr | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
        order_by: str | None = None,
        descending: bool = False,
        at: float | None = None,
    ) -> tuple[list[dict], Plan]:
        """Run a query; returns (column->value dicts, the plan used)."""
        schema = self.storage.catalog.table(table)
        names, idxs = self._projection(table, schema, columns)
        matches, plan = self.matching(table, where, at=at)
        if order_by is not None:
            key_idx = schema.column_index(order_by)
            matches.sort(
                key=lambda pair: (pair[1][key_idx] is None, pair[1][key_idx]),
                reverse=descending,
            )
        if limit is not None:
            matches = matches[:limit]
        out = [
            {name: row[idx] for name, idx in zip(names, idxs)}
            for _, row in matches
        ]
        return out, plan

    def count(self, table: str, where: Expr | None = None,
              at: float | None = None) -> int:
        matches, _ = self.matching(table, where, at=at)
        return len(matches)

    def aggregate(
        self,
        table: str,
        function: str,
        column: str | None = None,
        where: Expr | None = None,
        group_by: str | None = None,
        at: float | None = None,
    ):
        """COUNT/SUM/MIN/MAX/AVG, optionally grouped by one column.

        ``column=None`` is COUNT(*) semantics (rows, not values).  Without
        ``group_by`` returns a scalar; with it, a dict of group -> value.
        """
        function = function.lower()
        if function not in self.AGGREGATES:
            raise SQLError(
                f"unknown aggregate {function!r}; choose from {sorted(self.AGGREGATES)}"
            )
        if column is None and function != "count":
            raise SQLError(f"{function.upper()} requires a column")
        schema = self.storage.catalog.table(table)
        col_idx = schema.column_index(column) if column is not None else None
        group_idx = schema.column_index(group_by) if group_by is not None else None
        fold = self.AGGREGATES[function]

        def values_of(rows):
            if col_idx is None:
                return rows  # COUNT(*): count whole rows
            return [row[col_idx] for _, row in rows if row[col_idx] is not None]

        matches, _ = self.matching(table, where, at=at)
        if group_idx is None:
            return fold(values_of(matches))
        groups: dict = {}
        for rid, row in matches:
            groups.setdefault(row[group_idx], []).append((rid, row))
        return {key: fold(values_of(rows)) for key, rows in groups.items()}

    def explain(self, table: str, where: Expr | None = None) -> str:
        return self._plans.plan(table, where).describe()

    # ------------------------------------------------------------------
    # Write statements (caller holds the table's write lock)
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, object]) -> int:
        schema = self.storage.catalog.table(table)
        row = schema.validate_row(dict(values))
        return self.storage.insert_row(table, schema, row)

    def update(
        self,
        table: str,
        assignments: Mapping[str, object],
        where: Expr | None = None,
    ) -> int:
        schema = self.storage.catalog.table(table)
        validated = {
            name: schema.column(name).validate(value)
            for name, value in assignments.items()
        }
        changed = 0
        # MVCC update protocol: the new row version is a fresh tuple at a
        # new rid, so every index on the table must be maintained (no
        # HOT optimisation) and the old version leaves a dead tuple
        # until vacuum — PostgreSQL's cost model for Figure 3b.  The
        # storage layer records both halves in the active write session,
        # so rollback undoes the pair and commit stamps it.
        matches, _ = self.matching(table, where)
        for rid, row in matches:
            new_row = list(row)
            for name, value in validated.items():
                new_row[schema.column_index(name)] = value
            new_tuple = tuple(new_row)
            self.storage.check_unique(table, schema, new_tuple, skip_rid=rid)
            self.storage.delete_row(table, rid, row)
            self.storage.insert_version(table, new_tuple)
            changed += 1
        return changed

    def delete(self, table: str, where: Expr | None = None, limit: int | None = None) -> int:
        self.storage.catalog.table(table)  # validate before touching the heap
        matches, _ = self.matching(table, where, limit=limit)
        for rid, row in matches:
            self.storage.delete_row(table, rid, row)
        return len(matches)
