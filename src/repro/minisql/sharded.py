"""Multi-process sharded minisql behind the ``Database`` facade.

The SQL twin of :mod:`repro.minikv.sharded` (PR 4's headline): every
minisql configuration so far — including MVCC — executes all engine
bytecode on one GIL, so the ``fig8t`` thread-scaling curves flatten at
one core while the sharded minikv keeps climbing.  This module
hash-partitions each table's **rows by primary key** across
``MiniSQLConfig.shards`` worker processes:

* each worker owns one shard: a full :class:`~repro.minisql.database.Database`
  (``shards=1``) with its own WAL at ``<wal_path>.shard<i>`` and its own
  csvlog at ``<csvlog_path>.shard<i>``, so durability, crash recovery,
  TTL sweeping, autovacuum, and the audit trail are all per-shard and
  independent;
* the front (:class:`ShardedDatabase`) exposes the facade's statement
  surface: DDL fans out (every shard holds the same catalog, different
  rows), a row routes to shard ``crc32(str(pk_value)) % N`` on INSERT,
  point statements whose WHERE pins the primary key (``Cmp(pk, '=', v)``)
  route to that one shard, and every other SELECT / COUNT / AGGREGATE /
  UPDATE / DELETE fans out with a gather-side merge (concatenate + late
  sort/limit for rows, sums for counts, per-function folds for
  aggregates — AVG decomposes into per-shard SUM + COUNT);
* :meth:`ShardedDatabase.pipeline` scatter/gathers a statement batch:
  one sub-batch message per involved shard, each executed **inside one
  transaction on its worker** (one lock-set acquisition, one WAL group
  commit — per-shard transactional atomicity), with the workers running
  in parallel under their own GILs;
* a worker that dies is respawned on the next statement that touches it
  and replays its shard's WAL before serving — recovery is per-shard and
  never stalls the other shards.

What stays single-shard (the honest cost of partitioning, tabled in
``docs/sharding.md``): cross-shard statements are **not atomic across
shards** (each shard applies its part atomically; concurrent observers
can see one shard's effects first), explicit ``begin()``/``transaction()``
handles are refused on the front (use :meth:`~ShardedDatabase.pipeline`
for per-shard atomicity), a primary key cannot be reassigned by UPDATE
(rows are partitioned by it), and tables created without a primary key
live wholly on shard 0.

``shards=1`` deployments pay none of this: callers go through
:func:`open_database`, which returns a plain in-process
:class:`Database` — the paper's semantics, byte-identical to the seed
construction path — unless ``shards > 1``.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.common.errors import ConfigurationError, SQLError
from repro.common.hashring import in_slot, key_point
from repro.common.sharding import (
    ShardConnectionError as _BaseShardConnectionError,
    ShardRouter,
    serve_shard,
    shard_path,
)
from repro.crypto.luks import FileCipher

from .database import Database, MiniSQLConfig
from .executor import Executor
from .expr import Cmp, Expr
from .schema import Column


class SQLShardConnectionError(_BaseShardConnectionError, SQLError):
    """A minisql shard worker could not be reached even after a respawn."""


#: statement methods that take the written side of a table (everything
#: else on the batch surface is a read)
_WRITE_METHODS = frozenset({"insert", "update", "delete"})

#: statement methods a ``("batch", ...)`` message may carry; all of them
#: exist on :class:`~repro.minisql.transaction.Transaction` (and the read
#: half on :class:`~repro.minisql.database.SnapshotReader`)
BATCHABLE_STATEMENTS = (
    "select", "select_point", "count", "aggregate",
    "insert", "update", "delete",
)


def shard_store_path(base_path: str, index: int) -> str:
    """Per-shard persistence file (WAL / csvlog) for one worker."""
    return shard_path(base_path, index)


def _worker_config(config: MiniSQLConfig, index: int) -> MiniSQLConfig:
    """The engine config one worker runs: its own shard, one process."""
    return dataclasses.replace(
        config,
        shards=1,
        transport="pipe",
        shard_addresses=None,
        wal_path=(
            shard_store_path(config.wal_path, index)
            if config.wal_path is not None else None
        ),
        csvlog_path=(
            shard_store_path(config.csvlog_path, index)
            if config.csvlog_path is not None else None
        ),
    )


class _ShardBackend(Database):
    """The engine one minisql shard worker runs.

    A full :class:`Database` plus the handful of RPC helpers the front
    needs that the facade does not expose as plain picklable methods
    (property access, sweeper handles, catalog bootstrap).
    """

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None) -> list[dict]:
        """Point lookup as a statement (the pipelined read hot path)."""
        return self.select(table, Cmp(column, "=", value), columns=columns)

    def describe(self) -> dict[str, tuple[str, Column] | None]:
        """table -> (pk name, pk Column), for front routing bootstrap.

        The Column rides along so the front can canonicalize values
        through the declared type before hashing (an INSERT carrying the
        int ``1`` and a SELECT carrying the coerced ``1.0`` must route
        to the same shard).  Tables without a primary key map to None.
        """
        out: dict[str, tuple[str, Column] | None] = {}
        for name in self.catalog.tables():
            schema = self.catalog.table(name)
            if schema.primary_key is None:
                out[name] = None
            else:
                out[name] = (schema.primary_key,
                             schema.column(schema.primary_key))
        return out

    def get_catalog(self):
        """The shard's catalog (identical on every shard: DDL fans out)."""
        return self.catalog

    def arm_ttl(self, table: str, column: str,
                interval: float | None = None) -> None:
        """``enable_ttl`` minus the sweeper handle (not picklable)."""
        self.enable_ttl(table, column, interval)

    def flush_csvlog(self) -> None:
        """Force buffered audit lines to disk for front-side readers."""
        if self.csvlog is not None:
            self.csvlog.flush()

    def flush_wal(self) -> None:
        """Force the WAL buffer to disk (minikv's ``flush_aof`` twin)."""
        if self._storage.wal is not None:
            self._storage.wal.flush()

    # -- online resharding (the worker side; see docs/sharding.md) --------

    def migrate_dump(self, lo: int, hi: int) -> dict[str, list[dict]]:
        """Every pk-routed row whose key falls in ring slot ``(lo, hi]``.

        Rows are read through the statement surface, so the dump sees
        exactly the committed state (including writes still buffered for
        the WAL file — the catch-up step).  Tables without a primary key
        are not ring-placed (they live on the anchor shard) and are
        skipped here; :meth:`migrate_dump_tables` moves them wholesale.
        """
        out: dict[str, list[dict]] = {}
        for name in self.catalog.tables():
            pk = self.catalog.table(name).primary_key
            if pk is None:
                continue
            rows = [
                row for row in self.select(name, _internal=True)
                if in_slot(key_point(str(row[pk])), lo, hi)
            ]
            if rows:
                out[name] = rows
        return out

    def migrate_dump_tables(self, tables: Sequence[str]) -> dict[str, list[dict]]:
        """Whole tables (the pk-less anchor set), for anchor handover."""
        return {name: self.select(name, _internal=True) for name in tables}

    def migrate_apply(self, payload: Mapping[str, list[dict]]) -> int:
        """Install dumped rows; idempotent so a repaired migration can
        re-apply (delete-by-pk first; pk-less tables are replaced whole —
        their rows only ever live on one shard)."""
        applied = 0
        for name, rows in payload.items():
            pk = self.catalog.table(name).primary_key
            if pk is None:
                self.delete(name, None, _internal=True)
            for row in rows:
                if pk is not None:
                    self.delete(name, Cmp(pk, "=", row[pk]), _internal=True)
                self.insert(name, row, _internal=True)
                applied += 1
        return applied

    def migrate_drop(self, payload: Mapping[str, list[dict]]) -> int:
        """Forget dumped rows after the destination applied them."""
        dropped = 0
        for name, rows in payload.items():
            pk = self.catalog.table(name).primary_key
            if pk is None:
                continue  # pk-less tables move by handover, never by slot
            for row in rows:
                dropped += self.delete(name, Cmp(pk, "=", row[pk]), _internal=True)
        return dropped

    def dump_catalog(self) -> dict:
        """DDL as data: everything a fresh shard needs to mirror us."""
        tables = []
        for name in self.catalog.tables():
            schema = self.catalog.table(name)
            tables.append((name, list(schema.columns), schema.primary_key))
        indices = []
        for name in self.catalog.tables():
            for info in self.catalog.indices_for(name):
                if info.name == f"{name}_pkey":
                    continue  # create_table rebuilds the pkey index itself
                indices.append((info.name, info.table, info.column, info.unique))
        ttls = [
            (sweeper.table, sweeper.column, sweeper.interval)
            for sweeper in self._sweepers.values()
        ]
        return {"tables": tables, "indices": indices, "ttls": ttls}

    def load_catalog(self, payload: Mapping) -> None:
        """Mirror a dumped catalog; idempotent (repair may replay it)."""
        existing = set(self.catalog.tables())
        for name, columns, primary_key in payload["tables"]:
            if name not in existing:
                self.create_table(name, columns, primary_key)
        for name, table, column, unique in payload["indices"]:
            index_names = {
                info.name for t in self.catalog.tables()
                for info in self.catalog.indices_for(t)
            }
            if name not in index_names:
                self.create_index(name, table, column, unique=unique)
        for table, column, interval in payload["ttls"]:
            if table not in self._sweepers:
                self.enable_ttl(table, column, interval)


def _run_statement_batch(db: _ShardBackend, calls: list) -> list:
    """One ``("batch", ...)`` message: a statement sub-batch, atomically.

    The whole sub-batch runs inside **one transaction** — one lock-set
    acquisition over exactly the tables it touches, one maintenance
    tick, one WAL group commit — with failures captured per slot
    (every statement runs; the front raises the first error after the
    gather), mirroring ``SQLClientPipeline``'s error contract.  Under
    ``locking="mvcc"`` a pure-read sub-batch skips the transaction
    machinery and runs lock-free against one snapshot.
    """
    read_tables: set[str] = set()
    write_tables: set[str] = set()
    for method, args, _kwargs in calls:
        table = args[0]
        if method in _WRITE_METHODS:
            write_tables.add(table)
        else:
            read_tables.add(table)
    results: list = []

    def drain(runner) -> None:
        for method, args, kwargs in calls:
            try:
                results.append(getattr(runner, method)(*args, **kwargs))
            except Exception as exc:  # captured per slot, batch continues
                results.append(exc)

    if not write_tables and db.config.locking == "mvcc":
        with db.snapshot_reader(statements=len(calls)) as reader:
            drain(reader)
    else:
        with db.transaction(
            read=sorted(read_tables - write_tables), write=sorted(write_tables)
        ) as txn:
            drain(txn)
    return results


def _worker_main(conn, config: MiniSQLConfig) -> None:
    """One shard worker: replay the shard WAL, then serve the connection."""
    engine = _ShardBackend(config)  # replays this shard's WAL if one exists
    serve_shard(conn, engine, _run_statement_batch, SQLError)


class ShardedSQLPipeline:
    """A queued statement batch scatter/gathered across shard workers.

    The SQL analogue of :class:`~repro.minikv.sharded.ShardedPipeline`:
    queueing methods mirror the statement surface and return ``self``;
    :meth:`execute` splits the queue into one sub-batch per involved
    shard, ships each as a single message, and every worker runs its
    sub-batch **inside one transaction** — so atomicity is per shard
    (each sub-batch commits atomically on its shard; there is no
    cross-shard barrier).  Point statements occupy one slot part;
    fan-out statements (a SELECT/UPDATE/DELETE/COUNT whose WHERE does
    not pin the primary key) split into one part per shard and merge at
    gather time (row concatenation / count sums).
    """

    __slots__ = ("_front", "_slots", "_per_shard")

    def __init__(self, front: "ShardedDatabase") -> None:
        self._front = front
        #: one entry per queued statement: (merge kind, parts, limit),
        #: where parts are (shard index, position in that shard's
        #: sub-batch) and limit re-cuts a fan-out "rows" merge at gather
        self._slots: list[tuple[str, tuple[tuple[int, int], ...], int | None]] = []
        self._per_shard: dict[int, list[tuple[str, tuple, dict]]] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def _queue_parts(self, merge: str, indices: Sequence[int], method: str,
                     args: tuple, kwargs: dict,
                     limit: int | None = None) -> "ShardedSQLPipeline":
        parts = []
        for index in indices:
            calls = self._per_shard.setdefault(index, [])
            parts.append((index, len(calls)))
            calls.append((method, args, kwargs))
        self._slots.append((merge, tuple(parts), limit))
        return self

    def _queue_routed(self, merge: str, table: str, where, method: str,
                      args: tuple, kwargs: dict,
                      limit: int | None = None) -> "ShardedSQLPipeline":
        index = self._front._route_where(table, where)
        indices = self._front.shard_ids if index is None else (index,)
        return self._queue_parts(merge, indices, method, args, kwargs, limit)

    # -- queueing surface (mirrors the statement surface) -----------------

    def insert(self, table: str, values: Mapping[str, object]) -> "ShardedSQLPipeline":
        values = dict(values)
        index = self._front._route_row(table, values)
        return self._queue_parts("one", (index,), "insert", (table, values), {})

    def update(self, table: str, assignments: Mapping[str, object],
               where: Expr | None = None) -> "ShardedSQLPipeline":
        self._front._check_pk_assignment(table, assignments)
        return self._queue_routed(
            "sum", table, where, "update", (table, dict(assignments), where), {}
        )

    def delete(self, table: str, where: Expr | None = None) -> "ShardedSQLPipeline":
        return self._queue_routed("sum", table, where, "delete", (table, where), {})

    def select(self, table: str, where: Expr | None = None,
               columns: Sequence[str] | None = None,
               limit: int | None = None) -> "ShardedSQLPipeline":
        # each shard applies `limit` locally (no shard ships more than
        # that), then the gather re-cuts the concatenation to `limit`
        return self._queue_routed(
            "rows", table, where, "select", (table, where),
            {"columns": list(columns) if columns is not None else None,
             "limit": limit},
            limit=limit,
        )

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None) -> "ShardedSQLPipeline":
        front = self._front
        kwargs = {"columns": list(columns) if columns is not None else None}
        if front._pks.get(table) == column:
            indices: Sequence[int] = (front._shard_for_value(table, value),)
        else:
            indices = front.shard_ids
        return self._queue_parts(
            "rows", indices, "select_point", (table, column, value), kwargs
        )

    def count(self, table: str, where: Expr | None = None) -> "ShardedSQLPipeline":
        return self._queue_routed("sum", table, where, "count", (table, where), {})

    # -- execution --------------------------------------------------------

    def execute(self, raise_on_error: bool = True) -> list:
        """Run the batch; per-statement results in queue order.

        Failures are captured per slot and the first is raised after the
        whole batch completes (pass ``raise_on_error=False`` to receive
        them in the result list) — the client pipeline's contract.
        """
        slots, self._slots = self._slots, []
        per_shard, self._per_shard = self._per_shard, {}
        if not slots:
            return []
        gathered = self._front._scatter(
            [(index, ("batch", calls)) for index, calls in per_shard.items()]
        )
        results = []
        for merge, parts, limit in slots:
            if len(parts) == 1:
                index, position = parts[0]
                value = gathered[index][position]
                if merge == "rows" and isinstance(value, list):
                    value = list(value)
            elif merge == "sum":
                value = 0
                for index, position in parts:
                    part = gathered[index][position]
                    if isinstance(part, Exception):
                        value = part
                        break
                    value += part
            else:  # "rows": concatenate in shard order, re-cut to limit
                value = []
                for index, position in sorted(parts):
                    part = gathered[index][position]
                    if isinstance(part, Exception):
                        value = part
                        break
                    value.extend(part)
                if limit is not None and isinstance(value, list):
                    value = value[:limit]
            results.append(value)
        if raise_on_error:
            for value in results:
                if isinstance(value, Exception):
                    raise value
        return results


class ShardedDatabase(ShardRouter):
    """Shard router: the ``Database`` statement surface over N workers.

    Construct via :func:`open_database` so that ``shards=1``
    configurations stay on the in-process engine.  Worker lifecycle,
    crash recovery, and the scatter/gather transport come from
    :class:`repro.common.sharding.ShardRouter`; this class adds primary-
    key routing and the gather-side merges.
    """

    worker_target = staticmethod(_worker_main)
    worker_name = "minisql-shard"
    error_class = SQLShardConnectionError

    def __init__(self, config: MiniSQLConfig | None = None,
                 start_method: str | None = None) -> None:
        self.config = config or MiniSQLConfig()
        if self.config.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        self._file_cipher = FileCipher() if self.config.encryption_at_rest else None
        super().__init__(
            self.config.shards,
            start_method=start_method,
            transport=self.config.transport,
            addresses=self.config.shard_addresses,
            ring_vnodes=self.config.ring_vnodes,
            # the topology file lives next to the WAL; without durability
            # the topology is in-memory like everything else
            base_path=self.config.wal_path,
        )
        #: table -> primary key name, and table -> pk Column (for value
        #: canonicalization) — the routing maps.  Bootstrapped from the
        #: anchor shard so a WAL-recovered deployment routes correctly
        #: (DDL fans out, so every shard holds the same catalog).
        self._pks: dict[str, str | None] = {}
        self._pk_columns: dict[str, Column] = {}
        for table, pk_info in self._call(self._anchor_id, "describe").items():
            self._register_pk(table, pk_info)

    # ------------------------------------------------------------------
    # Router hooks
    # ------------------------------------------------------------------

    def _shard_config(self, shard_id: int) -> MiniSQLConfig:
        return _worker_config(self.config, shard_id)

    def _shard_files(self, shard_id: int) -> list[str]:
        paths = []
        if self.config.wal_path is not None:
            paths.append(shard_store_path(self.config.wal_path, shard_id))
        if self.config.csvlog_path is not None:
            paths.append(shard_store_path(self.config.csvlog_path, shard_id))
        return paths

    def _on_shard_added(self, shard_id: int) -> None:
        """Clone the catalog onto the fresh shard (DDL fans out, so every
        live shard already agrees; any of them can be the template)."""
        template = min(i for i in self._shards if i != shard_id)
        payload = self._call(template, "dump_catalog")
        self._call(shard_id, "load_catalog", payload)

    def _before_shard_removed(self, shard_id: int, surviving_ids) -> None:
        """Hand pk-less tables over when the anchor shard departs.

        Tables without a primary key are not ring-placed: all their rows
        live on the anchor (smallest live id).  Removing the anchor
        re-homes them wholesale onto the next-smallest id; the apply
        replaces the target's (empty) copy, so a repaired re-run is safe.
        """
        if shard_id != min(shard_id, *surviving_ids):
            return  # not the anchor: nothing lives outside the ring
        nopk = [
            table for table, pk_info
            in self._call(shard_id, "describe").items()
            if pk_info is None
        ]
        if not nopk:
            return
        payload = self._call(shard_id, "migrate_dump_tables", nopk)
        self._call(min(surviving_ids), "migrate_apply", payload)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _register_pk(self, table: str,
                     pk_info: tuple[str, Column] | None) -> None:
        if pk_info is None:
            self._pks[table] = None
            self._pk_columns.pop(table, None)
        else:
            self._pks[table], self._pk_columns[table] = pk_info

    def _shard_for_value(self, table: str, value) -> int:
        """The shard owning primary-key ``value`` (ring point of its text).

        The value is canonicalized through the declared column type
        first, so the int ``1`` an INSERT carries and the stored float
        ``1.0`` a later point SELECT carries hash identically — routing
        must agree with what validation stores.  A value the type
        rejects routes on its raw text; the statement itself raises the
        real error on its worker.
        """
        column = self._pk_columns.get(table)
        if column is not None:
            try:
                value = column.validate(value)
            except Exception:
                pass  # let the routed statement surface the type error
        return self._owner(key_point(str(value)))

    def _route_row(self, table: str, values: Mapping[str, object]) -> int:
        """The shard a new row lands on: hash of its primary key value.

        Tables without a primary key have no routing attribute and live
        wholly on shard 0 (documented in docs/sharding.md).
        """
        pk = self._pks.get(table)
        if pk is None:
            return self._anchor_id
        return self._shard_for_value(table, values.get(pk))

    def _route_where(self, table: str, where: Expr | None) -> int | None:
        """Shard index when ``where`` pins the primary key, else None.

        A WHERE routes when a **top-level conjunct** is the point shape
        ``Cmp(pk, '=', value)`` — the bare predicate itself, or any arm
        of an ``And`` tree (``Expr.conjuncts`` flattens nested ``And``s).
        Rows satisfying such a WHERE can live on no other shard: INSERT
        routed the key there and UPDATE may not reassign a primary key,
        and AND only ever narrows the match.  Everything else — ranges,
        other columns, disjunctions (an OR arm does not constrain the
        whole match) — fans out.  Two contradictory pk conjuncts
        (``pk=1 AND pk=2``) route to either key's shard: the match is
        empty everywhere, so any single shard answers correctly.
        """
        pk = self._pks.get(table)
        if pk is None or where is None:
            return None
        for conjunct in where.conjuncts():
            if (isinstance(conjunct, Cmp) and conjunct.op == "="
                    and conjunct.column == pk):
                return self._shard_for_value(table, conjunct.value)
        return None

    def _check_pk_assignment(self, table: str, assignments: Mapping[str, object]) -> None:
        pk = self._pks.get(table)
        if pk is not None and pk in assignments:
            raise SQLError(
                f"sharded minisql cannot reassign primary key {pk!r} of "
                f"{table!r}: rows are partitioned by it (DELETE + INSERT "
                "to move a row)"
            )

    # ------------------------------------------------------------------
    # DDL (fans out: every shard holds the same catalog)
    # ------------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Column],
                     primary_key: str | None = None) -> None:
        columns = list(columns)
        self._fanout("create_table", (name, columns, primary_key))
        if primary_key is None:
            self._register_pk(name, None)
        else:
            pk_column = next(c for c in columns if c.name == primary_key)
            self._register_pk(name, (primary_key, pk_column))

    def drop_table(self, name: str) -> None:
        self._fanout("drop_table", (name,))
        self._pks.pop(name, None)
        self._pk_columns.pop(name, None)

    def create_index(self, name: str, table: str, column: str,
                     unique: bool = False) -> None:
        self._fanout("create_index", (name, table, column), {"unique": unique})

    def drop_index(self, name: str) -> None:
        self._fanout("drop_index", (name,))

    def enable_ttl(self, table: str, column: str,
                   interval: float | None = None) -> None:
        """Attach the timely-deletion daemon on every shard.

        Each worker arms its own sweeper over its own rows; the per-shard
        sweeper handle stays in the worker (it is not picklable), so this
        returns ``None`` — unlike the in-process facade.
        """
        self._fanout("arm_ttl", (table, column, interval))

    # ------------------------------------------------------------------
    # DML / queries
    # ------------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, object],
               _internal: bool = False) -> int:
        return self._call(
            self._route_row(table, values), "insert", table, dict(values),
            _internal=_internal,
        )

    def select(
        self,
        table: str,
        where: Expr | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
        order_by: str | None = None,
        descending: bool = False,
        _internal: bool = False,
    ) -> list[dict]:
        """Run a query; point-on-pk routes, everything else fans out.

        The fan-out merge reproduces the facade's semantics: each shard
        applies ``order_by``/``limit`` locally (so no shard ships more
        than ``limit`` rows), the gather concatenates, re-sorts with the
        executor's NULLS-last key, and re-cuts to ``limit``.
        """
        index = self._route_where(table, where)
        if index is not None:
            return self._call(
                index, "select", table, where, columns=columns, limit=limit,
                order_by=order_by, descending=descending, _internal=_internal,
            )
        fetch_columns = columns
        if (columns is not None and order_by is not None
                and order_by not in columns):
            # the gather-side sort needs the order column; strip it after
            fetch_columns = list(columns) + [order_by]
        gathered = self._fanout("select", (table, where), {
            "columns": fetch_columns, "limit": limit, "order_by": order_by,
            "descending": descending, "_internal": _internal,
        })
        rows = [row for i in sorted(gathered) for row in gathered[i]]
        if order_by is not None:
            rows.sort(
                key=lambda row: (row[order_by] is None, row[order_by]),
                reverse=descending,
            )
        if limit is not None:
            rows = rows[:limit]
        if fetch_columns is not columns:
            for row in rows:
                del row[order_by]
        return rows

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None) -> list[dict]:
        """Point lookup: one shard when ``column`` is the primary key."""
        if self._pks.get(table) == column:
            return self._call(
                self._shard_for_value(table, value), "select_point",
                table, column, value, columns=columns,
            )
        gathered = self._fanout(
            "select_point", (table, column, value), {"columns": columns}
        )
        return [row for i in sorted(gathered) for row in gathered[i]]

    def count(self, table: str, where: Expr | None = None) -> int:
        index = self._route_where(table, where)
        if index is not None:
            return self._call(index, "count", table, where)
        return sum(self._fanout("count", (table, where)).values())

    def aggregate(
        self,
        table: str,
        function: str,
        column: str | None = None,
        where: Expr | None = None,
        group_by: str | None = None,
    ):
        """COUNT/SUM/MIN/MAX/AVG with a per-function gather-side fold.

        COUNT and SUM sum the per-shard results, MIN/MAX take the
        extremum, and AVG decomposes into per-shard SUM + COUNT (a mean
        of per-shard means would weight shards, not rows).  ``group_by``
        folds the same way per group across the shard dicts.  Empty-set
        semantics match the executor: COUNT is 0, the rest are ``None``.
        """
        function = function.lower()
        if function not in Executor.AGGREGATES:
            raise SQLError(
                f"unknown aggregate {function!r}; choose from "
                f"{sorted(Executor.AGGREGATES)}"
            )
        index = self._route_where(table, where)
        if index is not None:
            return self._call(
                index, "aggregate", table, function, column=column,
                where=where, group_by=group_by,
            )
        if function == "avg":
            if column is None:
                raise SQLError("AVG requires a column")
            sums = self._merged_aggregate(table, "sum", column, where, group_by)
            counts = self._merged_aggregate(table, "count", column, where, group_by)
            if group_by is None:
                return sums / counts if counts else None
            return {
                group: (sums[group] / counts[group]) if counts.get(group) else None
                for group in sums
            }
        return self._merged_aggregate(table, function, column, where, group_by)

    #: per-shard aggregate results -> one value (non-None parts only)
    _AGGREGATE_MERGES = {
        "count": sum,
        "sum": sum,
        "min": min,
        "max": max,
    }

    def _merged_aggregate(self, table: str, function: str, column, where, group_by):
        fold = self._AGGREGATE_MERGES[function]
        gathered = self._fanout("aggregate", (table, function), {
            "column": column, "where": where, "group_by": group_by,
        })
        parts = [gathered[i] for i in sorted(gathered)]
        if group_by is None:
            values = [part for part in parts if part is not None]
            if not values:
                return 0 if function == "count" else None
            return fold(values)
        merged: dict = {}
        for part in parts:
            for group, value in part.items():
                if value is None:
                    merged.setdefault(group, None)
                elif merged.get(group) is None:
                    merged[group] = value
                else:
                    merged[group] = fold((merged[group], value))
        return merged

    def update(
        self,
        table: str,
        assignments: Mapping[str, object],
        where: Expr | None = None,
        _internal: bool = False,
    ) -> int:
        self._check_pk_assignment(table, assignments)
        assignments = dict(assignments)
        index = self._route_where(table, where)
        if index is not None:
            return self._call(
                index, "update", table, assignments, where, _internal=_internal
            )
        return sum(self._fanout(
            "update", (table, assignments, where), {"_internal": _internal}
        ).values())

    def delete(self, table: str, where: Expr | None = None,
               _internal: bool = False) -> int:
        index = self._route_where(table, where)
        if index is not None:
            return self._call(index, "delete", table, where, _internal=_internal)
        return sum(self._fanout(
            "delete", (table, where), {"_internal": _internal}
        ).values())

    def vacuum(self, table: str | None = None) -> int:
        return sum(self._fanout("vacuum", (table,)).values())

    def explain(self, table: str, where: Expr | None = None) -> str:
        """Plans are identical on every shard; the anchor answers."""
        return self._call(self._anchor_id, "explain", table, where)

    def pipeline(self) -> ShardedSQLPipeline:
        """A new scatter/gather statement batch (one txn per shard)."""
        return ShardedSQLPipeline(self)

    # -- refused single-shard-only surface --------------------------------

    def begin(self, *args, **kwargs):
        """Cross-shard interactive transactions are not supported."""
        raise SQLError(
            "sharded minisql has no cross-shard transactions; use "
            "pipeline() for per-shard transactional batches, or shards=1"
        )

    transaction = begin

    def snapshot_reader(self, *args, **kwargs):
        """There is no cross-shard snapshot to pin."""
        raise SQLError(
            "sharded minisql has no cross-shard snapshots; each shard "
            "reads its own (use shards=1 for a global snapshot surface)"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def catalog(self):
        """The catalog (fetched from the anchor; identical on every shard)."""
        return self._call(self._anchor_id, "get_catalog")

    @property
    def ttl_enabled(self) -> bool:
        return bool(
            self._call(self._anchor_id, "info")
            ["gdpr_features"]["timely_deletion"]
        )

    @property
    def wal_paths(self) -> list[str]:
        """The live shards' WAL files (empty when durability is off)."""
        if self.config.wal_path is None:
            return []
        return [shard_store_path(self.config.wal_path, i)
                for i in self.shard_ids]

    @property
    def csvlog_paths(self) -> list[str]:
        """The live shards' statement/audit logs (empty without monitoring)."""
        if self.config.csvlog_path is None:
            return []
        return [shard_store_path(self.config.csvlog_path, i)
                for i in self.shard_ids]

    def flush_csvlog(self) -> None:
        """Flush every shard's csvlog (audit readers parse the files)."""
        self._fanout("flush_csvlog")

    def flush_wal(self) -> None:
        """Flush every shard's WAL buffer (the ``flush_aof`` analogue)."""
        self._fanout("flush_wal")

    def table_stats(self, table: str) -> dict:
        gathered = self._fanout("table_stats", (table,))
        per_shard = [gathered[i] for i in sorted(gathered)]
        index_bytes: dict[str, int] = {}
        for stats in per_shard:
            for name, size in stats["index_bytes"].items():
                index_bytes[name] = index_bytes.get(name, 0) + size
        return {
            "live_rows": sum(s["live_rows"] for s in per_shard),
            "dead_rows": sum(s["dead_rows"] for s in per_shard),
            "heap_bytes": sum(s["heap_bytes"] for s in per_shard),
            "index_bytes": index_bytes,
            "total_bytes": sum(s["total_bytes"] for s in per_shard),
        }

    def disk_usage(self) -> dict:
        gathered = self._fanout("disk_usage")
        per_shard = list(gathered.values())
        return {
            key: sum(usage[key] for usage in per_shard)
            for key in per_shard[0]
        }

    def info(self) -> dict:
        gathered = self._fanout("info")
        per_shard = [gathered[i] for i in sorted(gathered)]
        return {
            "tables": per_shard[0]["tables"],
            "statements": sum(i["statements"] for i in per_shard),
            "gdpr_features": per_shard[0]["gdpr_features"],
            "disk_usage": {
                key: sum(i["disk_usage"][key] for i in per_shard)
                for key in per_shard[0]["disk_usage"]
            },
            "shards": self.shard_count,
            "statements_per_shard": [i["statements"] for i in per_shard],
        }

    def __enter__(self) -> "ShardedDatabase":
        return self


def open_database(config: MiniSQLConfig | None = None, clock=None):
    """Engine factory honouring ``MiniSQLConfig.shards``.

    ``shards=1`` (the default) returns the in-process :class:`Database` —
    the paper's execution model, byte-identical to the seed facade.
    ``shards > 1`` returns a :class:`ShardedDatabase` front over that
    many worker processes.  Sharded workers keep their own system clocks
    (a clock cannot be shared across processes), so injecting a custom
    ``clock`` requires ``shards=1``.
    """
    config = config or MiniSQLConfig()
    if config.shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if config.shards == 1:
        return Database(config, clock=clock)
    if clock is not None:
        raise ConfigurationError(
            "sharded minisql workers run on their own system clocks; "
            "custom clocks require shards=1"
        )
    return ShardedDatabase(config)
