"""Concurrency + transaction layer for minisql.

The top layer of the engine's split: who may run what, when, and how the
WAL is fsynced.

Locking
-------
:class:`LockManager` hands out per-table locks in one of two modes:

* ``"table-rw"`` (the default) — one :class:`~repro.common.rwlock.RWLock`
  per table.  SELECT/COUNT/AGGREGATE take the shared side, so the paper's
  SELECT-heavy GDPR workloads proceed in parallel across benchmark
  threads; INSERT/UPDATE/DELETE/VACUUM take the exclusive side.
* ``"global"`` — a single reentrant lock serialises every statement,
  byte-for-byte the seed engine's execution model.  The benchmark grid
  keeps this configuration as the scaling baseline.

Multi-table acquisition always walks tables in ascending name order, the
same total-order rule the minikv stripes use, which makes deadlock between
lock holders impossible.

Transactions
------------
A :class:`Transaction` is the statement-batch primitive: ``begin()``
acquires the declared tables' locks once (write beats read on overlap),
every statement inside runs against the executor without re-locking, and
``commit()`` releases the locks after **one WAL group commit** — the
transaction's appends buffer and a single fsync-policy application runs at
the commit boundary (see :meth:`~repro.minisql.wal.WALWriter.batch`).
Crash mid-commit tears at most the trailing WAL record; replay keeps every
intact record before it, exactly the per-statement semantics.

This is grouped durability plus two-phase-locking isolation, **not**
rollback: statements apply to the heap as they execute, and ``abort()``
only releases locks.  That is the honest analogue of the paper's engines —
Redis MULTI offers no rollback either, and the GDPR workloads are
single-statement — while giving batched clients the one-fsync-per-batch
cost structure of real group commit.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Mapping, Sequence

from repro.common.errors import CatalogError, ConfigurationError, SQLError
from repro.common.rwlock import RWLock

from .expr import Cmp, Expr

LOCKING_MODES = ("table-rw", "global")


class LockManager:
    """Per-table reader-writer locks, or one global lock (seed semantics)."""

    def __init__(self, mode: str = "table-rw") -> None:
        if mode not in LOCKING_MODES:
            raise ConfigurationError(
                f"unknown locking mode {mode!r}; choose from {LOCKING_MODES}"
            )
        self.mode = mode
        self._global = threading.RLock() if mode == "global" else None
        self._tables: dict[str, RWLock] = {}
        self._registry = threading.Lock()  # guards lazy lock creation

    def _table_lock(self, table: str) -> RWLock:
        try:
            return self._tables[table]
        except KeyError:
            with self._registry:
                return self._tables.setdefault(table, RWLock())

    # -- statement-scoped locking -------------------------------------------

    @contextmanager
    def read(self, table: str):
        if self._global is not None:
            with self._global:
                yield
        else:
            with self._table_lock(table).read_locked():
                yield

    @contextmanager
    def write(self, table: str):
        if self._global is not None:
            with self._global:
                yield
        else:
            with self._table_lock(table).write_locked():
                yield

    # -- transaction-scoped locking -----------------------------------------

    def acquire(self, read: Sequence[str], write: Sequence[str]) -> list:
        """Acquire a lock set for a transaction; returns release tokens.

        Tables are locked in ascending name order (write mode winning when
        a table appears in both sets), so concurrent transactions cannot
        deadlock on each other.
        """
        write_set = set(write)
        plan = sorted(set(read) | write_set)
        if self._global is not None:
            if not plan:
                return []
            self._global.acquire()
            return [("global", None)]
        held = []
        for table in plan:
            lock = self._table_lock(table)
            if table in write_set:
                lock.acquire_write()
                held.append(("write", lock))
            else:
                lock.acquire_read()
                held.append(("read", lock))
        return held

    def release(self, held: list) -> None:
        for kind, lock in reversed(held):
            if kind == "global":
                self._global.release()
            elif kind == "write":
                lock.release_write()
            else:
                lock.release_read()


class Transaction:
    """A statement batch under one lock acquisition and one group commit.

    Obtained from :meth:`Database.begin` / :meth:`Database.transaction`.
    Statement methods mirror the :class:`Database` surface (DML + queries;
    DDL is not allowed inside a transaction).  Tables not declared at
    ``begin()`` may be locked on first touch and held to commit (two-phase
    locking) — but only while that keeps the acquisition sequence in
    ascending table-name order, the global deadlock-freedom rule.  An
    out-of-order first touch, like upgrading a read-declared table to a
    write, is refused rather than attempted: either would deadlock under
    concurrency, so declare the full intent at ``begin()``.
    """

    def __init__(self, db, read: Sequence[str] = (), write: Sequence[str] = (),
                 internal: bool = False) -> None:
        self._db = db
        self._read = {str(t) for t in read}
        self._write = {str(t) for t in write}
        self._internal = internal
        self._held: list = []
        self._wal_batch = None
        self._active = False

    # -- lifecycle -----------------------------------------------------------

    def begin(self) -> "Transaction":
        if self._active:
            raise SQLError("transaction already begun")
        # Maintenance (TTL sweeps, autovacuum) runs before any lock is
        # taken, so the sweeper's own write locks never nest inside ours.
        if not self._internal:
            self._db._maintain()
        self._held = self._db._locks.acquire(
            self._read - self._write, self._write
        )
        self._wal_batch = self._db._storage.wal_batch()
        self._wal_batch.__enter__()
        self._active = True
        return self

    def commit(self) -> None:
        """Group-commit the WAL (one fsync policy application) + unlock."""
        self._finish()

    def abort(self) -> None:
        """Release locks.  Heap changes are NOT rolled back (see module doc)."""
        self._finish()

    def _finish(self) -> None:
        if not self._active:
            return
        self._active = False
        try:
            self._wal_batch.__exit__(None, None, None)
        finally:
            self._db._locks.release(self._held)
            self._held = []

    def __enter__(self) -> "Transaction":
        if not self._active:
            self.begin()
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    # -- lock bookkeeping -----------------------------------------------------

    def _touch(self, table: str, write: bool) -> None:
        if not self._active:
            raise SQLError("transaction is not active")
        if write:
            if table in self._write:
                return
            if table in self._read:
                raise SQLError(
                    f"table {table!r} was declared read-only in this "
                    "transaction; declare write intent at begin()"
                )
        elif table in self._write or table in self._read:
            return
        # A late acquisition is safe only if it extends the ascending-name
        # order every lock holder follows; acquiring out of order could
        # deadlock against a transaction that declared its set up front.
        held_tables = self._read | self._write
        if held_tables and table < max(held_tables):
            raise SQLError(
                f"table {table!r} sorts before an already-locked table; "
                "declare the full table set at begin()"
            )
        if write:
            self._write.add(table)
            self._held.extend(self._db._locks.acquire((), (table,)))
        else:
            self._read.add(table)
            self._held.extend(self._db._locks.acquire((table,), ()))

    # -- statement surface (mirrors Database) ---------------------------------

    def select(self, table: str, where: Expr | None = None,
               columns: Sequence[str] | None = None, limit: int | None = None,
               order_by: str | None = None, descending: bool = False,
               _internal: bool = False) -> list[dict]:
        self._touch(table, write=False)
        self._db._count_statement()
        rows, plan = self._db._executor.select(
            table, where, columns=columns, limit=limit,
            order_by=order_by, descending=descending,
        )
        self._db._audit_select(table, rows, plan)
        return rows

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None) -> list[dict]:
        """Prepared ``column = value`` lookup (the pipelined read hot path)."""
        db = self._db
        self._touch(table, write=False)
        db._count_statement()
        rows = db._executor.select_point(table, column, value, columns=columns)
        if db.csvlog is not None and db.csvlog.log_reads:
            plan = db._executor.plan(table, Cmp(column, "=", value))
            db._audit_select(table, rows, plan)
        return rows

    def count(self, table: str, where: Expr | None = None) -> int:
        self._touch(table, write=False)
        self._db._count_statement()
        return self._db._executor.count(table, where)

    def aggregate(self, table: str, function: str, column: str | None = None,
                  where: Expr | None = None, group_by: str | None = None):
        self._touch(table, write=False)
        self._db._count_statement()
        return self._db._executor.aggregate(
            table, function, column=column, where=where, group_by=group_by
        )

    def explain(self, table: str, where: Expr | None = None) -> str:
        self._touch(table, write=False)
        return self._db._executor.explain(table, where)

    def insert(self, table: str, values: Mapping[str, object]) -> int:
        self._touch(table, write=True)
        self._db._count_statement()
        rid = self._db._executor.insert(table, values)
        self._db._log_csv("INSERT", table, table, 1)
        return rid

    def update(self, table: str, assignments: Mapping[str, object],
               where: Expr | None = None) -> int:
        self._touch(table, write=True)
        self._db._count_statement()
        changed = self._db._executor.update(table, assignments, where)
        self._db._log_csv("UPDATE", table, repr(sorted(assignments)), changed)
        return changed

    def delete(self, table: str, where: Expr | None = None,
               limit: int | None = None) -> int:
        self._touch(table, write=True)
        self._db._count_statement()
        removed = self._db._executor.delete(table, where, limit=limit)
        self._db._log_csv("DELETE", table, repr(where), removed)
        return removed

    def vacuum(self, table: str | None = None) -> int:
        tables = [table] if table is not None else self._db.catalog.tables()
        reclaimed = 0
        for name in tables:
            self._touch(name, write=True)
            try:
                reclaimed += self._db._storage.vacuum_table(name)
            except CatalogError:
                if table is not None:
                    raise  # an explicit target must exist
                # database-wide sweep: skip concurrently dropped tables
        return reclaimed

    # DDL is a different lock hierarchy (catalog lock above table locks);
    # allowing it mid-transaction would deadlock against our held locks.

    def _no_ddl(self, *args, **kwargs):
        raise SQLError("DDL statements are not allowed inside a transaction")

    create_table = _no_ddl
    drop_table = _no_ddl
    create_index = _no_ddl
    drop_index = _no_ddl
