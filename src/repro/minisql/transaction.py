"""Concurrency + transaction layer for minisql.

The top layer of the engine's split: who may run what, when, and how the
WAL is fsynced.

Locking
-------
:class:`LockManager` hands out per-table locks in one of three modes:

* ``"table-rw"`` (the default) — one :class:`~repro.common.rwlock.RWLock`
  per table.  SELECT/COUNT/AGGREGATE take the shared side, so the paper's
  SELECT-heavy GDPR workloads proceed in parallel across benchmark
  threads; INSERT/UPDATE/DELETE/VACUUM take the exclusive side.
* ``"global"`` — a single reentrant lock serialises every statement,
  byte-for-byte the seed engine's execution model.  The benchmark grid
  keeps this configuration as the scaling baseline.
* ``"mvcc"`` — readers take **no locks at all**: every read statement
  (or read-only transaction) runs against a commit-timestamp snapshot
  (:mod:`repro.minisql.mvcc`), so a long compliance scan never blocks —
  and is never blocked by — the write stream.  Writers still take the
  per-table exclusive lock against *each other*; index node mutations
  are guarded by per-table latches held per B-tree operation (see
  :meth:`~repro.minisql.storage.Storage.index_latch`).  DDL remains a
  stop-the-world operation and should be quiesced before opening
  lock-free read traffic.

Multi-table acquisition always walks tables in ascending name order, the
same total-order rule the minikv stripes use, which makes deadlock between
lock holders impossible.

Transactions
------------
A :class:`Transaction` is the statement-batch primitive: ``begin()``
acquires the declared tables' locks once (write beats read on overlap),
every statement inside runs against the executor without re-locking, and
``commit()`` releases the locks after **one WAL group commit** — the
transaction's appends buffer and a single fsync-policy application runs at
the commit boundary (see :meth:`~repro.minisql.wal.WALWriter.batch`).
Under MVCC the transaction additionally pins one snapshot at ``begin()``
(repeatable reads for the tables it does not write) and stamps every row
version it created or deleted with one commit timestamp at ``commit()``,
making the whole batch visible atomically.

``rollback()`` undoes the transaction via the storage layer's WAL-backed
undo: every row operation recorded its inverse in the transaction's
:class:`~repro.minisql.storage.WriteSession`, the inverses apply in
reverse order, and compensation records go to the WAL so crash recovery
reproduces the rolled-back state (rids included).

``abort()`` is the exit path of the context manager on error.  Under MVCC
it must roll back — uncommitted version stamps cannot be left pending —
and does.  In the lock-based modes it keeps the seed semantics the module
has always had (statements applied to the heap stand; only locks are
released), which is the honest analogue of the paper's engines: Redis
MULTI offers no rollback either.  Call :meth:`Transaction.rollback`
explicitly when undo is wanted in a lock-based mode.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Mapping, Sequence

from repro.common.errors import CatalogError, ConfigurationError, SQLError
from repro.common.rwlock import RWLock

from .expr import Cmp, Expr

LOCKING_MODES = ("table-rw", "global", "mvcc")


class LockManager:
    """Per-table reader-writer locks, one global lock, or MVCC writer locks."""

    def __init__(self, mode: str = "table-rw") -> None:
        if mode not in LOCKING_MODES:
            raise ConfigurationError(
                f"unknown locking mode {mode!r}; choose from {LOCKING_MODES}"
            )
        self.mode = mode
        self._global = threading.RLock() if mode == "global" else None
        self._tables: dict[str, RWLock] = {}
        self._registry = threading.Lock()  # guards lazy lock creation

    def _table_lock(self, table: str) -> RWLock:
        try:
            return self._tables[table]
        except KeyError:
            with self._registry:
                return self._tables.setdefault(table, RWLock())

    # -- statement-scoped locking -------------------------------------------

    @contextmanager
    def read(self, table: str):
        if self._global is not None:
            with self._global:
                yield
        elif self.mode == "mvcc":
            yield  # snapshot visibility replaces the read lock
        else:
            with self._table_lock(table).read_locked():
                yield

    @contextmanager
    def write(self, table: str):
        if self._global is not None:
            with self._global:
                yield
        else:
            with self._table_lock(table).write_locked():
                yield

    # -- transaction-scoped locking -----------------------------------------

    def acquire(self, read: Sequence[str], write: Sequence[str]) -> list:
        """Acquire a lock set for a transaction; returns release tokens.

        Tables are locked in ascending name order (write mode winning when
        a table appears in both sets), so concurrent transactions cannot
        deadlock on each other.  In MVCC mode the read set acquires
        nothing — those tables are covered by the transaction's snapshot.
        """
        write_set = set(write)
        read_set = set() if self.mode == "mvcc" else set(read)
        plan = sorted(read_set | write_set)
        if self._global is not None:
            if not plan:
                return []
            self._global.acquire()
            return [("global", None)]
        held = []
        for table in plan:
            lock = self._table_lock(table)
            if table in write_set:
                lock.acquire_write()
                held.append(("write", lock))
            else:
                lock.acquire_read()
                held.append(("read", lock))
        return held

    def release(self, held: list) -> None:
        for kind, lock in reversed(held):
            if kind == "global":
                self._global.release()
            elif kind == "write":
                lock.release_write()
            else:
                lock.release_read()


class Transaction:
    """A statement batch under one lock acquisition and one group commit.

    Obtained from :meth:`Database.begin` / :meth:`Database.transaction`.
    Statement methods mirror the :class:`Database` surface (DML + queries;
    DDL is not allowed inside a transaction).  Tables not declared at
    ``begin()`` may be locked on first touch and held to commit (two-phase
    locking) — but only while that keeps the acquisition sequence in
    ascending table-name order, the global deadlock-freedom rule.  An
    out-of-order first touch, like upgrading a read-declared table to a
    write in a lock-based mode, is refused rather than attempted: either
    would deadlock under concurrency, so declare the full intent at
    ``begin()``.  (Under MVCC reads hold no locks, so reading any table
    at any point — and writing a previously-read one, order permitting —
    is always allowed.)
    """

    def __init__(self, db, read: Sequence[str] = (), write: Sequence[str] = (),
                 internal: bool = False) -> None:
        self._db = db
        self._read = {str(t) for t in read}
        self._write = {str(t) for t in write}
        self._internal = internal
        self._held: list = []
        self._wal_batch = None
        self._session = None
        self._snapshot_ts: int | None = None
        self._active = False
        self._owner: int | None = None

    @property
    def _mvcc(self) -> bool:
        return self._db._locks.mode == "mvcc"

    # -- lifecycle -----------------------------------------------------------

    def begin(self) -> "Transaction":
        if self._active:
            raise SQLError("transaction already begun")
        # Maintenance (TTL sweeps, autovacuum) runs before any lock is
        # taken, so the sweeper's own write locks never nest inside ours.
        if not self._internal:
            self._db._maintain()
        self._held = self._db._locks.acquire(
            self._read - self._write, self._write
        )
        self._wal_batch = self._db._storage.wal_batch()
        self._wal_batch.__enter__()
        # The undo session is installed on this thread's session stack, so
        # statements must run on the thread that called begin() — a
        # statement from another thread would silently escape the session
        # (never stamped, never undoable).  _touch enforces this.
        self._owner = threading.get_ident()
        self._session = self._db._storage.begin_session()
        if self._mvcc:
            # One snapshot for the whole transaction: repeatable reads on
            # every table outside the write set, without read locks.
            self._snapshot_ts = self._db._snapshots.acquire()
        self._active = True
        return self

    def commit(self) -> None:
        """Stamp + group-commit the WAL (one fsync application) + unlock."""
        self._finish(stamp=True)

    def rollback(self) -> None:
        """Undo every statement of the transaction, then unlock.

        Rollback is WAL-backed: the storage layer applies the recorded
        inverses in reverse order and appends compensation records inside
        this transaction's WAL batch, so crash recovery replays into the
        rolled-back state.  Pre-images return to the heap (and, under
        MVCC, the undone versions are never visible to any snapshot).
        """
        if not self._active:
            return
        self._db._storage.rollback_session(self._session)
        self._finish(stamp=False)

    def abort(self) -> None:
        """Error exit: roll back under MVCC, release-only otherwise.

        Lock-based modes keep the seed semantics (heap changes stand —
        see the module docstring); MVCC cannot leave pending version
        stamps behind, so abort performs a full :meth:`rollback`.
        """
        if self._mvcc:
            self.rollback()
        else:
            self._finish(stamp=True)

    def _finish(self, stamp: bool) -> None:
        if not self._active:
            return
        self._active = False
        try:
            if stamp:
                self._db._commit_session(self._session)
        finally:
            self._db._storage.end_session(self._session)
            try:
                self._wal_batch.__exit__(None, None, None)
            finally:
                if self._snapshot_ts is not None:
                    self._db._snapshots.release(self._snapshot_ts)
                    self._snapshot_ts = None
                self._db._locks.release(self._held)
                self._held = []

    def __enter__(self) -> "Transaction":
        if not self._active:
            self.begin()
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    # -- lock bookkeeping -----------------------------------------------------

    def _read_at(self, table: str) -> int | None:
        """Visibility for a read in this transaction.

        MVCC reads outside the write set use the transaction's snapshot;
        reads of tables this transaction writes use latest visibility
        (read-your-own-writes — the write lock makes latest == committed
        state + our own changes).  Lock-based modes always read latest
        under their locks.
        """
        if self._snapshot_ts is None or table in self._write:
            return None
        return self._snapshot_ts

    def _touch(self, table: str, write: bool) -> None:
        if not self._active:
            raise SQLError("transaction is not active")
        if threading.get_ident() != self._owner:
            raise SQLError(
                "transaction is bound to the thread that called begin(); "
                "open a separate transaction per thread"
            )
        mvcc = self._mvcc
        if not write:
            if mvcc:
                self._read.add(table)  # snapshot-covered; nothing to lock
                return
            if table in self._write or table in self._read:
                return
        else:
            if table in self._write:
                return
            if table in self._read and not mvcc:
                raise SQLError(
                    f"table {table!r} was declared read-only in this "
                    "transaction; declare write intent at begin()"
                )
        # A late acquisition is safe only if it extends the ascending-name
        # order every lock holder follows; acquiring out of order could
        # deadlock against a transaction that declared its set up front.
        # Only tables that actually hold locks constrain the order — under
        # MVCC that is the write set alone.
        held_tables = self._write if mvcc else (self._read | self._write)
        if held_tables and table < max(held_tables):
            raise SQLError(
                f"table {table!r} sorts before an already-locked table; "
                "declare the full table set at begin()"
            )
        if write:
            self._write.add(table)
            self._held.extend(self._db._locks.acquire((), (table,)))
        else:
            self._read.add(table)
            self._held.extend(self._db._locks.acquire((table,), ()))

    # -- statement surface (mirrors Database) ---------------------------------

    def select(self, table: str, where: Expr | None = None,
               columns: Sequence[str] | None = None, limit: int | None = None,
               order_by: str | None = None, descending: bool = False,
               _internal: bool = False) -> list[dict]:
        self._touch(table, write=False)
        self._db._count_statement()
        rows, plan = self._db._executor.select(
            table, where, columns=columns, limit=limit,
            order_by=order_by, descending=descending, at=self._read_at(table),
        )
        self._db._audit_select(table, rows, plan)
        return rows

    def select_point(self, table: str, column: str, value,
                     columns: Sequence[str] | None = None) -> list[dict]:
        """Prepared ``column = value`` lookup (the pipelined read hot path)."""
        db = self._db
        self._touch(table, write=False)
        db._count_statement()
        rows = db._executor.select_point(
            table, column, value, columns=columns, at=self._read_at(table)
        )
        if db.csvlog is not None and db.csvlog.log_reads:
            plan = db._executor.plan(table, Cmp(column, "=", value))
            db._audit_select(table, rows, plan)
        return rows

    def count(self, table: str, where: Expr | None = None) -> int:
        self._touch(table, write=False)
        self._db._count_statement()
        return self._db._executor.count(table, where, at=self._read_at(table))

    def aggregate(self, table: str, function: str, column: str | None = None,
                  where: Expr | None = None, group_by: str | None = None):
        self._touch(table, write=False)
        self._db._count_statement()
        return self._db._executor.aggregate(
            table, function, column=column, where=where, group_by=group_by,
            at=self._read_at(table),
        )

    def explain(self, table: str, where: Expr | None = None) -> str:
        self._touch(table, write=False)
        return self._db._executor.explain(table, where)

    def insert(self, table: str, values: Mapping[str, object]) -> int:
        self._touch(table, write=True)
        self._db._count_statement()
        rid = self._db._executor.insert(table, values)
        self._db._log_csv("INSERT", table, table, 1)
        return rid

    def update(self, table: str, assignments: Mapping[str, object],
               where: Expr | None = None) -> int:
        self._touch(table, write=True)
        self._db._count_statement()
        changed = self._db._executor.update(table, assignments, where)
        self._db._log_csv("UPDATE", table, repr(sorted(assignments)), changed)
        return changed

    def delete(self, table: str, where: Expr | None = None,
               limit: int | None = None) -> int:
        self._touch(table, write=True)
        self._db._count_statement()
        removed = self._db._executor.delete(table, where, limit=limit)
        self._db._log_csv("DELETE", table, repr(where), removed)
        return removed

    def vacuum(self, table: str | None = None) -> int:
        tables = [table] if table is not None else self._db.catalog.tables()
        reclaimed = 0
        for name in tables:
            self._touch(name, write=True)
            try:
                reclaimed += self._db._storage.vacuum_table(
                    name, self._db._snapshots.horizon()
                )
            except CatalogError:
                if table is not None:
                    raise  # an explicit target must exist
                # database-wide sweep: skip concurrently dropped tables
        return reclaimed

    # DDL is a different lock hierarchy (catalog lock above table locks);
    # allowing it mid-transaction would deadlock against our held locks.

    def _no_ddl(self, *args, **kwargs):
        raise SQLError("DDL statements are not allowed inside a transaction")

    create_table = _no_ddl
    drop_table = _no_ddl
    create_index = _no_ddl
    drop_index = _no_ddl
