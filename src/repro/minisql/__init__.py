"""minisql — PostgreSQL-like relational engine (the paper's RDBMS stand-in)."""

from .btree import BTreeIndex, InvertedIndex, ORDER
from .csvlog import CSVLogger
from .database import Database, MiniSQLConfig
from .executor import Executor
from .expr import (
    ALWAYS,
    And,
    Cmp,
    Contains,
    Expr,
    In,
    IsEmpty,
    IsNull,
    Like,
    Not,
    Or,
    TrueExpr,
)
from .heap import HeapTable, RowCodec
from .planner import Plan, PlanCache, plan_scan
from .schema import Catalog, Column, IndexInfo, TableSchema
from .sharded import (
    ShardedDatabase,
    ShardedSQLPipeline,
    SQLShardConnectionError,
    open_database,
    shard_store_path,
)
from .sql import execute, execute_batch, statement_intent, tokenize
from .storage import Storage
from .transaction import LockManager, Transaction
from .ttl_daemon import TTLSweeper
from .types import (
    BYTES,
    FLOAT,
    INTEGER,
    TEXT,
    TEXT_LIST,
    TIMESTAMP,
    SQLType,
    type_by_name,
)
from .wal import WALWriter, load_wal

__all__ = [
    "Database",
    "MiniSQLConfig",
    "ShardedDatabase",
    "ShardedSQLPipeline",
    "SQLShardConnectionError",
    "open_database",
    "shard_store_path",
    "Storage",
    "Executor",
    "Transaction",
    "LockManager",
    "PlanCache",
    "execute_batch",
    "statement_intent",
    "Column",
    "TableSchema",
    "Catalog",
    "IndexInfo",
    "BTreeIndex",
    "InvertedIndex",
    "ORDER",
    "HeapTable",
    "RowCodec",
    "Plan",
    "plan_scan",
    "TTLSweeper",
    "CSVLogger",
    "WALWriter",
    "load_wal",
    "execute",
    "tokenize",
    "SQLType",
    "INTEGER",
    "FLOAT",
    "TEXT",
    "BYTES",
    "TIMESTAMP",
    "TEXT_LIST",
    "type_by_name",
    "Expr",
    "Cmp",
    "Contains",
    "In",
    "IsEmpty",
    "IsNull",
    "Like",
    "And",
    "Or",
    "Not",
    "TrueExpr",
    "ALWAYS",
]
