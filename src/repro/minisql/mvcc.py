"""Multi-version concurrency control primitives for minisql.

Two small pieces give the engine PostgreSQL-style snapshot reads when
``MiniSQLConfig.locking == "mvcc"``:

* :class:`CommitClock` — the logical commit-timestamp oracle.  Writers
  allocate a timestamp inside :meth:`CommitClock.committing`, stamp every
  row version they created or deleted with it, and the timestamp is
  *published* (becomes visible in ``last_committed``) only after stamping
  finishes.  Readers therefore never observe a half-stamped commit: a
  snapshot taken at ``last_committed`` either predates a commit entirely
  or includes all of it.
* :class:`SnapshotManager` — the registry of active snapshot timestamps.
  A snapshot pins every row version it can still see: vacuum asks
  :meth:`SnapshotManager.horizon` for the oldest active snapshot and only
  reclaims dead versions whose deleting commit is at or below it.

Timestamps are logical (a monotonically increasing integer), not wall
clock: only their order matters for visibility.

Visibility rule (shared with :mod:`repro.minisql.heap`): a version
stamped ``(xmin, xmax)`` is visible to a snapshot at ``ts`` iff
``xmin <= ts`` and (``xmax is None`` or ``xmax > ts``).  Pending
(uncommitted) inserts carry ``xmin = inf`` so no snapshot sees them;
pending deletes carry ``xmax = None`` so every snapshot still sees the
old version until the deleting transaction commits.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

#: xmin of a row whose inserting transaction has not committed yet —
#: greater than every snapshot timestamp, so invisible to all readers.
PENDING = float("inf")

#: vacuum horizon when no snapshot is active: everything dead is
#: reclaimable (the lock-based modes always run here).
NO_HORIZON = float("inf")


class CommitClock:
    """Logical commit-timestamp oracle with publish-after-stamp semantics."""

    __slots__ = ("_lock", "_last_committed")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last_committed = 0

    @property
    def last_committed(self) -> int:
        """The newest fully-stamped commit timestamp (a snapshot basis).

        Reading an int attribute is atomic under the GIL, so readers take
        snapshots without touching the commit lock.
        """
        return self._last_committed

    @contextmanager
    def committing(self):
        """Allocate the next commit timestamp; publish it on clean exit.

        The lock is held across the caller's stamping loop, serialising
        commits globally (stamping is O(rows changed) of pure attribute
        writes, so the critical section is tiny).  Holding it guarantees
        that once ``last_committed`` advances to ``ts``, every version
        stamped with a timestamp <= ``ts`` is fully in place.
        """
        with self._lock:
            ts = self._last_committed + 1
            yield ts
            self._last_committed = ts


class SnapshotManager:
    """Registry of active snapshot timestamps (the vacuum fence).

    ``acquire()`` pins the current ``last_committed`` timestamp and
    returns it; ``release(ts)`` unpins it.  Multiple concurrent readers
    at the same timestamp share one refcount entry.
    """

    __slots__ = ("_clock", "_lock", "_active")

    def __init__(self, clock: CommitClock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._active: dict[int, int] = {}  # snapshot ts -> refcount

    def acquire(self) -> int:
        # The timestamp must be read inside the lock: sampling it first
        # would let a vacuum compute horizon() between the sample and the
        # registration and reclaim a version this snapshot must see.
        # (Anything reclaimed before we register is still safe — its xmax
        # is <= last_committed, hence never visible to a snapshot taken
        # at last_committed.)
        with self._lock:
            ts = self._clock.last_committed
            self._active[ts] = self._active.get(ts, 0) + 1
        return ts

    def release(self, ts: int) -> None:
        with self._lock:
            count = self._active.get(ts, 0) - 1
            if count > 0:
                self._active[ts] = count
            else:
                self._active.pop(ts, None)

    def horizon(self) -> float:
        """Oldest active snapshot timestamp, or ``NO_HORIZON`` when idle.

        Vacuum may reclaim a dead version iff its ``xmax`` is at or below
        this: every active snapshot (ts >= horizon) and every future
        snapshot (ts >= last_committed >= xmax) already finds it
        invisible.
        """
        with self._lock:
            return min(self._active) if self._active else NO_HORIZON

    @property
    def active_count(self) -> int:
        with self._lock:
            return sum(self._active.values())

    @contextmanager
    def snapshot(self):
        """Context-manager form: acquire a snapshot ts, release on exit."""
        ts = self.acquire()
        try:
            yield ts
        finally:
            self.release(ts)
