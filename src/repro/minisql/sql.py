"""A tiny SQL front-end for minisql.

Covers the statement shapes the examples and docs use — it is a
convenience layer over the programmatic API, not a full SQL implementation:

    CREATE TABLE t (name TYPE [NOT NULL], ... [, PRIMARY KEY (col)])
    CREATE [UNIQUE] INDEX idx ON t (col)
    DROP INDEX idx
    DROP TABLE t
    INSERT INTO t (a, b) VALUES (1, 'x')
    SELECT a, b FROM t [WHERE ...] [ORDER BY col [DESC]] [LIMIT n]
    SELECT COUNT(*) FROM t [WHERE ...]
    UPDATE t SET a = 1 [WHERE ...]
    DELETE FROM t [WHERE ...]
    VACUUM [t]
    EXPLAIN SELECT ... FROM t [WHERE ...]

WHERE supports comparisons (=, !=, <, <=, >, >=), CONTAINS(col, 'tok'),
IS NULL / IS NOT NULL, AND/OR/NOT with parentheses, IN (...), and LIKE
(glob-style).  Literals: integers, floats, single-quoted strings, NULL.

:func:`execute` runs one statement against a :class:`Database` **or** a
:class:`~repro.minisql.transaction.Transaction` — both expose the same
statement surface.  :func:`execute_batch` is the pipelined form: it
pre-parses each statement's table and write intent, groups consecutive
non-DDL statements, and runs each group inside one transaction — one lock
acquisition and one WAL group commit per group instead of per statement.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.common.errors import ParseError

from .database import Database
from .expr import (
    And,
    Cmp,
    Contains,
    Expr,
    In,
    IsNull,
    Like,
    Not,
    Or,
)
from .schema import Column
from .types import type_by_name

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # string literal (with '' escape)
        | [A-Za-z_][A-Za-z_0-9]*  # identifier / keyword
        | -?\d+\.\d+              # float
        | -?\d+                   # int
        | <= | >= | != | <>       # two-char operators
        | [(),=<>*]               # single-char tokens
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "create", "table", "unique", "index", "on", "drop", "insert", "into",
    "values", "select", "from", "where", "order", "by", "desc", "asc",
    "limit", "update", "set", "delete", "vacuum", "explain", "and", "or",
    "not", "null", "is", "in", "like", "contains", "primary", "key", "count",
}


def tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize near {remainder[:20]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of statement")
        self._pos += 1
        return token

    def expect(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword.lower():
            raise ParseError(f"expected {keyword!r}, got {token!r}")

    def accept(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == keyword.lower():
            self._pos += 1
            return True
        return False

    def done(self) -> bool:
        return self._pos >= len(self._tokens)

    def identifier(self) -> str:
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            raise ParseError(f"expected identifier, got {token!r}")
        return token

    def literal(self):
        token = self.next()
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        if token.lower() == "null":
            return None
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            raise ParseError(f"expected literal, got {token!r}") from None

    # -- WHERE grammar: or_expr := and_expr (OR and_expr)* ----------------

    def parse_where(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        children = [left]
        while self.accept("or"):
            children.append(self._and_expr())
        return children[0] if len(children) == 1 else Or(*children)

    def _and_expr(self) -> Expr:
        left = self._unary()
        children = [left]
        while self.accept("and"):
            children.append(self._unary())
        return children[0] if len(children) == 1 else And(*children)

    def _unary(self) -> Expr:
        if self.accept("not"):
            return Not(self._unary())
        if self.accept("("):
            inner = self._or_expr()
            self.expect(")")
            return inner
        if self.peek() is not None and self.peek().lower() == "contains":
            self.next()
            self.expect("(")
            column = self.identifier()
            self.expect(",")
            token = self.literal()
            self.expect(")")
            if not isinstance(token, str):
                raise ParseError("CONTAINS token must be a string")
            return Contains(column, token)
        column = self.identifier()
        op = self.next()
        if op.lower() == "is":
            if self.accept("not"):
                self.expect("null")
                return Not(IsNull(column))
            self.expect("null")
            return IsNull(column)
        if op.lower() == "in":
            self.expect("(")
            values = [self.literal()]
            while self.accept(","):
                values.append(self.literal())
            self.expect(")")
            return In(column, tuple(values))
        if op.lower() == "like":
            pattern = self.literal()
            if not isinstance(pattern, str):
                raise ParseError("LIKE pattern must be a string")
            return Like(column, pattern)
        if op == "<>":
            op = "!="
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ParseError(f"unknown operator {op!r}")
        return Cmp(column, op, self.literal())


def execute(db, statement: str):
    """Parse and run one SQL statement against ``db``.

    ``db`` is a :class:`Database` or an open
    :class:`~repro.minisql.transaction.Transaction` (DDL statements are
    rejected by the latter).  Returns: list-of-dicts for SELECT, int for
    COUNT/UPDATE/DELETE/VACUUM, rid for INSERT, plan string for EXPLAIN,
    None for DDL.
    """
    parser = _Parser(tokenize(statement))
    head = parser.next().lower()

    if head == "create":
        if parser.accept("table"):
            return _create_table(db, parser)
        unique = parser.accept("unique")
        parser.expect("index")
        name = parser.identifier()
        parser.expect("on")
        table = parser.identifier()
        parser.expect("(")
        column = parser.identifier()
        parser.expect(")")
        db.create_index(name, table, column, unique=unique)
        return None

    if head == "drop":
        if parser.accept("table"):
            db.drop_table(parser.identifier())
        else:
            parser.expect("index")
            db.drop_index(parser.identifier())
        return None

    if head == "insert":
        parser.expect("into")
        table = parser.identifier()
        parser.expect("(")
        names = [parser.identifier()]
        while parser.accept(","):
            names.append(parser.identifier())
        parser.expect(")")
        parser.expect("values")
        parser.expect("(")
        values = [parser.literal()]
        while parser.accept(","):
            values.append(parser.literal())
        parser.expect(")")
        if len(names) != len(values):
            raise ParseError("INSERT column/value count mismatch")
        return db.insert(table, dict(zip(names, values)))

    if head == "select":
        return _select(db, parser)

    if head == "explain":
        parser.expect("select")
        saved = _select_parts(parser)
        return db.explain(saved["table"], saved["where"])

    if head == "update":
        table = parser.identifier()
        parser.expect("set")
        assignments = {}
        while True:
            column = parser.identifier()
            parser.expect("=")
            assignments[column] = parser.literal()
            if not parser.accept(","):
                break
        where = parser.parse_where() if parser.accept("where") else None
        return db.update(table, assignments, where)

    if head == "delete":
        parser.expect("from")
        table = parser.identifier()
        where = parser.parse_where() if parser.accept("where") else None
        return db.delete(table, where)

    if head == "vacuum":
        table = parser.identifier() if not parser.done() else None
        return db.vacuum(table)

    raise ParseError(f"unknown statement head {head!r}")


#: statement heads that mutate data (for batch lock planning)
_WRITE_HEADS = {"insert", "update", "delete", "vacuum"}


def statement_intent(statement: str) -> tuple[str, str | None, bool]:
    """Light pre-parse: (head, target table or None, writes?).

    Used by :func:`execute_batch` to plan a transaction's lock set without
    executing anything.  DDL statements (and VACUUM without a table, which
    targets every table) report ``table=None``.
    """
    parser = _Parser(tokenize(statement))
    head = parser.next().lower()
    if head == "insert":
        parser.expect("into")
        return head, parser.identifier(), True
    if head == "update":
        return head, parser.identifier(), True
    if head == "delete":
        parser.expect("from")
        return head, parser.identifier(), True
    if head in ("select", "explain"):
        # the table is the identifier after the first FROM keyword
        while not parser.done():
            token = parser.next()
            if not token.startswith("'") and token.lower() == "from":
                return head, parser.identifier(), False
        raise ParseError(f"{head.upper()} statement has no FROM clause")
    if head == "vacuum":
        table = parser.identifier() if not parser.done() else None
        return head, table, True
    if head in ("create", "drop"):
        return head, None, True  # DDL: runs standalone, outside transactions
    raise ParseError(f"unknown statement head {head!r}")


def execute_batch(db: Database, statements: Sequence[str]) -> list:
    """Run a statement stream with transaction-batched execution.

    Consecutive non-DDL statements execute inside one transaction — one
    lock-set acquisition (read locks for pure-query stretches, write locks
    where needed) and one WAL group commit per stretch.  DDL statements
    flush the pending stretch and run standalone, since DDL sits above
    table locks in the lock hierarchy.  Returns per-statement results in
    order.  Like an engine pipeline, the batch is not all-or-nothing: a
    failing statement aborts the remainder but earlier effects stand.
    """
    results: list = []
    pending: list[tuple[str, str | None, bool]] = []  # (stmt, table, writes)

    def flush() -> None:
        if not pending:
            return
        read: set[str] = set()
        write: set[str] = set()
        for _, table, writes in pending:
            if table is None:       # VACUUM with no target: every table
                write.update(db.catalog.tables())
            elif writes:
                write.add(table)
            else:
                read.add(table)
        with db.transaction(read=read - write, write=write) as txn:
            for stmt, _, _ in pending:
                results.append(execute(txn, stmt))
        pending.clear()

    for statement in statements:
        head, table, writes = statement_intent(statement)
        if head in ("create", "drop"):
            flush()
            results.append(execute(db, statement))
        else:
            pending.append((statement, table, writes))
    flush()
    return results


def _create_table(db: Database, parser: _Parser):
    name = parser.identifier()
    parser.expect("(")
    columns: list[Column] = []
    primary_key = None
    while True:
        if parser.accept("primary"):
            parser.expect("key")
            parser.expect("(")
            primary_key = parser.identifier()
            parser.expect(")")
        else:
            cname = parser.identifier()
            tname = parser.identifier()
            nullable = True
            if parser.accept("not"):
                parser.expect("null")
                nullable = False
            columns.append(Column(cname, type_by_name(tname), nullable))
        if not parser.accept(","):
            break
    parser.expect(")")
    db.create_table(name, columns, primary_key=primary_key)
    return None


_AGGREGATE_NAMES = ("count", "sum", "min", "max", "avg")


def _select_parts(parser: _Parser) -> dict:
    """Everything after SELECT, shared by SELECT and EXPLAIN SELECT."""
    columns: list[str] | None = None
    aggregate = None       # (function, column | None)
    head = parser.peek()
    if head is not None and head.lower() in _AGGREGATE_NAMES:
        function = parser.next().lower()
        parser.expect("(")
        if parser.accept("*"):
            if function != "count":
                raise ParseError(f"{function.upper()}(*) is not valid SQL")
            agg_column = None
        else:
            agg_column = parser.identifier()
        parser.expect(")")
        aggregate = (function, agg_column)
    elif parser.accept("*"):
        columns = None
    else:
        columns = [parser.identifier()]
        while parser.accept(","):
            columns.append(parser.identifier())
    parser.expect("from")
    table = parser.identifier()
    where = parser.parse_where() if parser.accept("where") else None
    group_by = None
    if parser.accept("group"):
        parser.expect("by")
        group_by = parser.identifier()
        if aggregate is None:
            raise ParseError("GROUP BY requires an aggregate select")
    order_by = None
    descending = False
    if parser.accept("order"):
        parser.expect("by")
        order_by = parser.identifier()
        if parser.accept("desc"):
            descending = True
        else:
            parser.accept("asc")
    limit = None
    if parser.accept("limit"):
        value = parser.literal()
        if not isinstance(value, int):
            raise ParseError("LIMIT must be an integer")
        limit = value
    return {
        "columns": columns,
        "aggregate": aggregate,
        "group_by": group_by,
        "table": table,
        "where": where,
        "order_by": order_by,
        "descending": descending,
        "limit": limit,
    }


def _select(db: Database, parser: _Parser):
    parts = _select_parts(parser)
    if parts["aggregate"] is not None:
        function, agg_column = parts["aggregate"]
        if function == "count" and agg_column is None and parts["group_by"] is None:
            return db.count(parts["table"], parts["where"])
        return db.aggregate(
            parts["table"], function, column=agg_column,
            where=parts["where"], group_by=parts["group_by"],
        )
    return db.select(
        parts["table"],
        where=parts["where"],
        columns=parts["columns"],
        limit=parts["limit"],
        order_by=parts["order_by"],
        descending=parts["descending"],
    )
