"""Write-ahead log for minisql: durability + crash recovery.

Every DDL and DML change is appended before it is applied to the heap;
replaying the log from an empty database reproduces the state.  Records are
length-prefixed pickles (fast, handles bytes/None/tuples), with the same
fsync policies the minikv AOF offers.  A torn trailing record (crash during
append) is skipped on replay, like PostgreSQL discarding an incomplete WAL
record at end-of-log.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from typing import Iterator

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError

_LEN = struct.Struct("<I")

FSYNC_POLICIES = ("always", "everysec", "no")


def encode_record(record: tuple) -> bytes:
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _LEN.pack(len(payload)) + payload


def decode_records(data: bytes) -> Iterator[tuple]:
    pos = 0
    n = len(data)
    while pos + _LEN.size <= n:
        (length,) = _LEN.unpack_from(data, pos)
        start = pos + _LEN.size
        end = start + length
        if end > n:
            return  # torn trailing record
        yield pickle.loads(data[start:end])
        pos = end


class WALWriter:
    """Buffered, fsync-policied append-only record log.

    With a ``cipher`` (the LUKS analogue) every byte is encrypted at its
    absolute file offset before buffering; :func:`load_wal` must be given
    the same cipher.
    """

    def __init__(self, path: str, fsync: str = "everysec", clock: Clock | None = None,
                 cipher=None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(f"unknown fsync policy {fsync!r}")
        self.path = path
        self.fsync = fsync
        self._clock = clock or SystemClock()
        self._file = open(path, "ab")
        self._buffer = io.BytesIO()
        self._last_flush = self._clock.now()
        self._records = 0
        self._cipher = cipher
        self._offset = self._file.tell()

    @property
    def records_written(self) -> int:
        return self._records

    def append(self, record: tuple) -> None:
        data = encode_record(record)
        if self._cipher is not None:
            data = self._cipher.apply(data, self._offset)
        self._offset += len(data)
        self._buffer.write(data)
        self._records += 1
        if self.fsync == "always":
            self.flush()
        elif self.fsync == "everysec":
            if self._clock.now() - self._last_flush >= 1.0:
                self.flush()

    def flush(self) -> None:
        data = self._buffer.getvalue()
        if data:
            self._file.write(data)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._buffer = io.BytesIO()
        self._last_flush = self._clock.now()

    def size_bytes(self) -> int:
        return self._file.tell() + len(self._buffer.getvalue())

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()


def load_wal(path: str, cipher=None) -> list[tuple]:
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        data = handle.read()
    if cipher is not None:
        data = cipher.apply(data, 0)
    return list(decode_records(data))
