"""Write-ahead log for minisql: durability + crash recovery.

Every DDL and DML change is appended before it is applied to the heap;
replaying the log from an empty database reproduces the state.  Records are
length-prefixed pickles (fast, handles bytes/None/tuples), with the same
fsync policies the minikv AOF offers.  A torn trailing record (crash during
append) is skipped on replay, like PostgreSQL discarding an incomplete WAL
record at end-of-log.

Group commit mirrors the minikv AOF (``aof_batch_size``): with
``batch_size > 1`` the ``always`` policy amortises its fsync over a batch —
records buffer until ``batch_size`` of them are pending, or until an append
observes the 1-second clock boundary, then hit the disk under one
flush+fsync.  The :meth:`WALWriter.batch` context manager gives the
transaction layer the same amortisation for an explicit commit boundary:
appends inside the block buffer unconditionally and a single policy
decision runs at block exit, so a transaction of N statements pays at most
one fsync.  Framing is unchanged, so replay semantics are exactly the
per-append ones: a torn trailing record (crash mid-group-commit) is
dropped and every intact record before it replays — the durability window
widens from one record to one batch, never the correctness.

The writer is thread-safe: the per-table locking layer above means appends
arrive from concurrent writer threads (one per table), and the internal
lock keeps record framing atomic.  Per-table append order is preserved
because each table's appends happen under that table's write lock.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError

_LEN = struct.Struct("<I")

FSYNC_POLICIES = ("always", "everysec", "no")


def encode_record(record: tuple) -> bytes:
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _LEN.pack(len(payload)) + payload


def decode_records(data: bytes) -> Iterator[tuple]:
    pos = 0
    n = len(data)
    while pos + _LEN.size <= n:
        (length,) = _LEN.unpack_from(data, pos)
        start = pos + _LEN.size
        end = start + length
        if end > n:
            return  # torn trailing record
        yield pickle.loads(data[start:end])
        pos = end


def valid_prefix_length(data: bytes) -> int:
    """Byte length of the intact record prefix (excludes a torn tail).

    Recovery truncates the file to this length before reopening it for
    appends, so post-crash records are never written *behind* torn bytes
    that every future replay would stop at — the WAL analogue of Redis'
    ``aof-load-truncated yes``.
    """
    pos = 0
    n = len(data)
    while pos + _LEN.size <= n:
        (length,) = _LEN.unpack_from(data, pos)
        end = pos + _LEN.size + length
        if end > n:
            break
        pos = end
    return pos


class WALWriter:
    """Buffered, fsync-policied append-only record log with group commit.

    With a ``cipher`` (the LUKS analogue) every byte is encrypted at its
    absolute file offset before buffering; :func:`load_wal` must be given
    the same cipher.
    """

    def __init__(self, path: str, fsync: str = "everysec", clock: Clock | None = None,
                 cipher=None, batch_size: int = 1) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(f"unknown fsync policy {fsync!r}")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.path = path
        self.fsync = fsync
        self.batch_size = batch_size
        self._clock = clock or SystemClock()
        self._file = open(path, "ab")
        self._buffer = io.BytesIO()
        self._last_flush = self._clock.now()
        self._records = 0
        self._cipher = cipher
        self._offset = self._file.tell()
        # Concurrent table writers append through one WAL; the RLock lets
        # the fsync policy call flush() while an append already holds it.
        self._lock = threading.RLock()
        self._pending = 0               # records buffered since last flush
        # batch() depth is per-thread: a transaction's group commit defers
        # only its own flush decision, not other tables' writers.
        self._batch = threading.local()

    @property
    def records_written(self) -> int:
        return self._records

    def _batch_depth(self) -> int:
        return getattr(self._batch, "depth", 0)

    def append(self, record: tuple) -> None:
        with self._lock:
            data = encode_record(record)
            if self._cipher is not None:
                data = self._cipher.apply(data, self._offset)
            self._offset += len(data)
            self._buffer.write(data)
            self._records += 1
            self._pending += 1
            if self._batch_depth() == 0:
                self._apply_fsync_policy()

    @contextmanager
    def batch(self):
        """Defer this thread's flush/fsync decisions to the end of the block.

        Appends inside the block only buffer; one fsync-policy application
        runs at exit — the transaction layer's commit boundary.  The writer
        lock is held per append, not across the block, so other threads'
        appends proceed normally in between.
        """
        self._batch.depth = self._batch_depth() + 1
        try:
            yield self
        finally:
            self._batch.depth -= 1
            if self._batch.depth == 0:
                with self._lock:
                    self._apply_fsync_policy(batch_boundary=True)

    def _apply_fsync_policy(self, batch_boundary: bool = False) -> None:
        if self.fsync == "always":
            # Group commit: wait for a full batch unless this *is* a
            # commit boundary; an append past the 1s clock boundary also
            # flushes (append-driven — idle buffers flush only on close).
            if (
                batch_boundary
                or self._pending >= self.batch_size
                or self._clock.now() - self._last_flush >= 1.0
            ):
                self.flush()
        elif self.fsync == "everysec":
            if self._clock.now() - self._last_flush >= 1.0:
                self.flush()

    def flush(self) -> None:
        with self._lock:
            data = self._buffer.getvalue()
            if data:
                self._file.write(data)
                self._file.flush()
                os.fsync(self._file.fileno())
                self._buffer = io.BytesIO()
            self._pending = 0
            self._last_flush = self._clock.now()

    def size_bytes(self) -> int:
        with self._lock:
            return self._file.tell() + len(self._buffer.getvalue())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self.flush()
                self._file.close()


def load_wal(path: str, cipher=None) -> list[tuple]:
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        data = handle.read()
    if cipher is not None:
        data = cipher.apply(data, 0)
    return list(decode_records(data))
