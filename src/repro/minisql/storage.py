"""Physical storage layer for minisql: catalog + heaps + indices + WAL.

This is the bottom layer of the engine's three-layer split (storage →
executor → transaction/locking, composed by :class:`~repro.minisql.database.Database`).
It owns everything that persists — the catalog, one :class:`HeapTable` per
table, the secondary indices, and the write-ahead log — and exposes the
*physical* operations on them: create/drop of tables and indices, row
insert/delete with index maintenance and WAL logging, vacuum, and crash
recovery by WAL replay.

The storage layer performs **no locking, no statement accounting, and no
audit logging** — those belong to the layers above.  Callers must hold the
appropriate table locks (see :mod:`repro.minisql.transaction`); WAL appends
made while a table's write lock is held preserve per-table record order,
which is all replay needs for rid-allocation determinism.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import CatalogError, ConstraintError, SQLError

from . import wal as wal_mod
from .btree import BTreeIndex, InvertedIndex
from .heap import HeapTable
from .schema import Catalog, Column, IndexInfo, TableSchema
from .types import TEXT_LIST, type_by_name


class Storage:
    """Catalog, heaps, secondary indices, and the WAL, as one unit."""

    def __init__(
        self,
        wal_path: str | None = None,
        fsync: str = "everysec",
        wal_batch_size: int = 1,
        cipher=None,
        clock: Clock | None = None,
    ) -> None:
        self.clock = clock or SystemClock()
        self.catalog = Catalog()
        self.heaps: dict[str, HeapTable] = {}
        self.indices: dict[str, BTreeIndex | InvertedIndex] = {}
        self.wal: wal_mod.WALWriter | None = None
        self.replaying = False
        self._cipher = cipher
        if wal_path is not None:
            self.replay(wal_path)
            self.wal = wal_mod.WALWriter(
                wal_path, fsync=fsync, clock=self.clock,
                cipher=cipher, batch_size=wal_batch_size,
            )

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------

    def log(self, record: tuple) -> None:
        if self.wal is not None and not self.replaying:
            self.wal.append(record)

    def wal_batch(self):
        """Group-commit scope: WAL appends inside it share one fsync."""
        if self.wal is None:
            return nullcontext()
        return self.wal.batch()

    # ------------------------------------------------------------------
    # DDL (physical)
    # ------------------------------------------------------------------

    def create_table(
        self, name: str, columns: Sequence[Column], primary_key: str | None = None
    ) -> TableSchema:
        schema = TableSchema(name, list(columns), primary_key)
        self.catalog.add_table(schema)
        self.heaps[name] = HeapTable(schema)
        self.log(
            (
                "create_table",
                name,
                [(c.name, c.type.name, c.nullable) for c in columns],
                primary_key,
            )
        )
        return schema

    def drop_table(self, name: str) -> None:
        for info in self.catalog.indices_for(name):
            self.indices.pop(info.name, None)
        self.catalog.drop_table(name)
        self.heaps.pop(name, None)
        self.log(("drop_table", name))

    def create_index(self, name: str, table: str, column: str, unique: bool = False) -> None:
        """Create a secondary index; kind is inferred from the column type.

        TEXT_LIST columns get an inverted (GIN-like) index; everything else
        a B-tree.  The index is built immediately from the existing heap.
        """
        schema = self.catalog.table(table)
        col = schema.column(column)
        kind = "inverted" if col.type is TEXT_LIST else "btree"
        if kind == "inverted" and unique:
            raise CatalogError("inverted indices cannot be UNIQUE")
        info = IndexInfo(name=name, table=table, column=column, kind=kind, unique=unique)
        self.catalog.add_index(info)
        index: BTreeIndex | InvertedIndex
        index = InvertedIndex() if kind == "inverted" else BTreeIndex(unique=unique)
        col_idx = schema.column_index(column)
        for rid, row in self.heaps[table].scan():
            index.insert(row[col_idx], rid)
        self.indices[name] = index
        self.log(("create_index", name, table, column, unique))

    def drop_index(self, name: str) -> IndexInfo:
        info = self.catalog.drop_index(name)
        self.indices.pop(name, None)
        self.log(("drop_index", name))
        return info

    # ------------------------------------------------------------------
    # Physical row operations (caller holds the table's write lock)
    # ------------------------------------------------------------------

    def heap(self, table: str) -> HeapTable:
        self.catalog.table(table)  # raises CatalogError for unknown tables
        return self.heaps[table]

    def index_add(self, table: str, row: tuple, rid: int) -> None:
        schema = self.catalog.table(table)
        for info in self.catalog.indices_for(table):
            key = row[schema.column_index(info.column)]
            self.indices[info.name].insert(key, rid)

    def index_remove(self, table: str, row: tuple, rid: int) -> None:
        schema = self.catalog.table(table)
        for info in self.catalog.indices_for(table):
            key = row[schema.column_index(info.column)]
            self.indices[info.name].remove(key, rid)

    def check_unique(self, table: str, schema: TableSchema, row: tuple, skip_rid: int | None) -> None:
        """Pre-check unique indices so a failed insert leaves no trace."""
        for info in self.catalog.indices_for(table):
            if not info.unique:
                continue
            key = row[schema.column_index(info.column)]
            if key is None:
                continue
            hits = [r for r in self.indices[info.name].search(key) if r != skip_rid]
            if hits:
                raise ConstraintError(
                    f"duplicate key {key!r} violates unique index {info.name!r}"
                )

    def insert_row(self, table: str, schema: TableSchema, row: tuple) -> int:
        """Heap insert + index maintenance + WAL record, unique-checked."""
        self.check_unique(table, schema, row, skip_rid=None)
        rid = self.heaps[table].insert(row)
        try:
            self.index_add(table, row, rid)
        except ConstraintError:
            self.heaps[table].delete(rid)
            raise
        self.log(("insert", table, rid, row))
        return rid

    def delete_row(self, table: str, rid: int, row: tuple) -> None:
        """Index removal + heap tombstone + WAL record."""
        self.index_remove(table, row, rid)
        self.heaps[table].delete(rid)
        self.log(("delete", table, rid))

    def vacuum_table(self, name: str) -> int:
        reclaimed = self.heap(name).vacuum()
        self.log(("vacuum", name))
        return reclaimed

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def replay(self, path: str) -> None:
        """Rebuild state from the WAL (crash recovery).

        Runs before the engine accepts statements, so no locks are taken;
        ``replaying`` suppresses re-logging.  A torn trailing record
        (crash mid-append or mid-group-commit) is dropped and the file is
        truncated back to its intact prefix, so records appended after
        recovery stay replayable.
        """
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            raw = handle.read()
        data = self._cipher.apply(raw, 0) if self._cipher is not None else raw
        valid = wal_mod.valid_prefix_length(data)
        if valid < len(raw):
            with open(path, "r+b") as handle:
                handle.truncate(valid)
        records = list(wal_mod.decode_records(data[:valid]))
        if not records:
            return
        self.replaying = True
        try:
            for record in records:
                self._replay_record(record)
        finally:
            self.replaying = False

    def _replay_record(self, record: tuple) -> None:
        op = record[0]
        if op == "create_table":
            _, name, cols, pk = record
            columns = [
                Column(cname, type_by_name(tname), nullable)
                for cname, tname, nullable in cols
            ]
            self.create_table(name, columns, primary_key=pk)
            if pk is not None:
                self.create_index(f"{name}_pkey", name, pk, unique=True)
        elif op == "drop_table":
            self.drop_table(record[1])
        elif op == "create_index":
            _, name, table, column, unique = record
            existing = {
                i.name for t in self.catalog.tables() for i in self.catalog.indices_for(t)
            }
            if name not in existing:
                self.create_index(name, table, column, unique=unique)
        elif op == "drop_index":
            self.drop_index(record[1])
        elif op == "insert":
            _, table, rid, row = record
            heap = self.heaps[table]
            got = heap.insert(row)
            if got != rid:
                raise SQLError(f"WAL replay divergence on {table}: rid {got} != {rid}")
            self.index_add(table, row, rid)
        elif op == "update":
            _, table, rid, row = record
            heap = self.heaps[table]
            old = heap.fetch(rid)
            if old is None:
                raise SQLError(f"WAL replay: update of missing rid {rid}")
            self.index_remove(table, old, rid)
            heap.update(rid, row)
            self.index_add(table, row, rid)
        elif op == "delete":
            _, table, rid = record
            heap = self.heaps[table]
            old = heap.fetch(rid)
            if old is None:
                raise SQLError(f"WAL replay: delete of missing rid {rid}")
            self.index_remove(table, old, rid)
            heap.delete(rid)
        elif op == "vacuum":
            self.heaps[record[1]].vacuum()
        else:
            raise SQLError(f"unknown WAL record {op!r}")

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
