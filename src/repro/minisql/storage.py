"""Physical storage layer for minisql: catalog + heaps + indices + WAL.

This is the bottom layer of the engine's three-layer split (storage →
executor → transaction/locking, composed by :class:`~repro.minisql.database.Database`).
It owns everything that persists — the catalog, one :class:`HeapTable` per
table, the secondary indices, and the write-ahead log — and exposes the
*physical* operations on them: create/drop of tables and indices, row
insert/delete with index maintenance and WAL logging, vacuum, and crash
recovery by WAL replay.

The storage layer performs **no locking, no statement accounting, and no
audit logging** — those belong to the layers above.  Callers must hold the
appropriate table locks (see :mod:`repro.minisql.transaction`); WAL appends
made while a table's write lock is held preserve per-table record order,
which is all replay needs for rid-allocation determinism.

Write sessions and undo
-----------------------
Every DML scope (one autocommit statement, or one transaction) runs inside
a :class:`WriteSession` installed via :meth:`Storage.begin_session`.  The
physical row operations record their inverse into the active session, so
the layer above can either

* **commit** — :meth:`commit_session` stamps every created version's
  ``xmin`` and every deleted version's ``xmax`` with the commit timestamp
  (see :mod:`repro.minisql.mvcc`), or
* **roll back** — :meth:`rollback_session` applies the inverses in reverse
  order and appends *compensation records* to the WAL (a ``delete`` for
  each undone insert, an ``undelete`` for each undone delete), so replaying
  the log reproduces the rolled-back state byte-for-byte, including rid
  allocation.

MVCC index retention: with ``mvcc=True`` a deleted row's index entries are
*kept* until vacuum (snapshot readers resolve them through visibility
checks), and unique B-trees are physically multimaps — logical uniqueness
is enforced by :meth:`check_unique` against live versions only, exactly
PostgreSQL's split between index structure and constraint.  Vacuum removes
the retained entries when it reclaims the dead version, and logs the
reclaimed rid list so replay frees the same slots in the same order.
"""

from __future__ import annotations

import os
import threading
from contextlib import nullcontext
from typing import Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import CatalogError, ConstraintError, SQLError

from . import wal as wal_mod
from .btree import BTreeIndex, InvertedIndex
from .heap import HeapTable
from .mvcc import NO_HORIZON
from .schema import Catalog, Column, IndexInfo, TableSchema
from .types import TEXT_LIST, type_by_name


class WriteSession:
    """The undo log of one DML scope (statement or transaction).

    ``changes`` holds ``("insert", table, rid, row)`` and
    ``("delete", table, rid, row)`` entries in apply order; commit stamps
    them, rollback applies their inverses in reverse.
    """

    __slots__ = ("changes",)

    def __init__(self) -> None:
        self.changes: list[tuple] = []


class Storage:
    """Catalog, heaps, secondary indices, and the WAL, as one unit."""

    def __init__(
        self,
        wal_path: str | None = None,
        fsync: str = "everysec",
        wal_batch_size: int = 1,
        cipher=None,
        clock: Clock | None = None,
        mvcc: bool = False,
    ) -> None:
        self.clock = clock or SystemClock()
        self.catalog = Catalog()
        self.heaps: dict[str, HeapTable] = {}
        self.indices: dict[str, BTreeIndex | InvertedIndex] = {}
        self.wal: wal_mod.WALWriter | None = None
        self.replaying = False
        #: snapshot readers take no table locks; per-table latches keep
        #: individual index operations atomic against concurrent writers
        #: (held per B-tree op, never across a statement).
        self.mvcc = mvcc
        self._latches: dict[str, threading.Lock] = {}
        self._latch_registry = threading.Lock()
        #: per-thread stack of active WriteSessions (undo recording).
        self._sessions = threading.local()
        self._cipher = cipher
        if wal_path is not None:
            self.replay(wal_path)
            self.wal = wal_mod.WALWriter(
                wal_path, fsync=fsync, clock=self.clock,
                cipher=cipher, batch_size=wal_batch_size,
            )

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------

    def log(self, record: tuple) -> None:
        if self.wal is not None and not self.replaying:
            self.wal.append(record)

    def wal_batch(self):
        """Group-commit scope: WAL appends inside it share one fsync."""
        if self.wal is None:
            return nullcontext()
        return self.wal.batch()

    # ------------------------------------------------------------------
    # Write sessions (undo recording + commit stamping)
    # ------------------------------------------------------------------

    def _session_stack(self) -> list:
        stack = getattr(self._sessions, "stack", None)
        if stack is None:
            stack = self._sessions.stack = []
        return stack

    def begin_session(self) -> WriteSession:
        """Install a write session for this thread's subsequent row ops."""
        session = WriteSession()
        self._session_stack().append(session)
        return session

    def end_session(self, session: WriteSession) -> None:
        stack = self._session_stack()
        if stack and stack[-1] is session:
            stack.pop()

    def _active_session(self) -> WriteSession | None:
        if self.replaying:
            return None
        stack = self._session_stack()
        return stack[-1] if stack else None

    def _record_change(self, change: tuple) -> None:
        session = self._active_session()
        if session is not None:
            session.changes.append(change)

    def commit_session(self, session: WriteSession, ts: float) -> None:
        """Stamp the session's versions with commit timestamp ``ts``.

        Call inside :meth:`~repro.minisql.mvcc.CommitClock.committing` so
        the timestamp is published only after every stamp is in place.
        """
        for kind, table, rid, _row in session.changes:
            heap = self.heaps.get(table)
            if heap is None:
                continue  # table dropped after the change (DDL races sessions only in tests)
            if kind == "insert":
                heap.stamp_insert(rid, ts)
            else:
                heap.stamp_delete(rid, ts)
        session.changes.clear()

    def rollback_session(self, session: WriteSession) -> None:
        """Undo the session's changes (WAL-backed: compensations are logged).

        Inverses apply in reverse order.  An undone insert becomes a
        tombstone with ``xmax = 0`` (invisible to every snapshot,
        reclaimable by the next vacuum) plus a compensating ``delete`` WAL
        record; an undone delete resurrects the retained version plus a
        compensating ``undelete`` record.  Replaying insert→delete or
        delete→undelete touches the same rids in the same order as the
        live rollback, so rid allocation stays deterministic.
        """
        changes, session.changes = session.changes, []
        for kind, table, rid, row in reversed(changes):
            heap = self.heaps.get(table)
            if heap is None:
                continue
            if kind == "insert":
                if not self.mvcc:
                    self.index_remove(table, row, rid)
                heap.delete(rid)  # xmax=0: never visible, vacuum-ready
                self.log(("delete", table, rid))
            else:
                restored = heap.undelete(rid)
                if not self.mvcc:
                    self.index_add(table, restored, rid)
                self.log(("undelete", table, rid))

    # ------------------------------------------------------------------
    # Index latches (MVCC lock-free readers vs index node mutation)
    # ------------------------------------------------------------------

    def index_latch(self, table: str):
        """The per-table index latch (a real lock only in MVCC mode).

        Writers hold it per index mutation (cheap: the table write lock
        already serialises them, so it is uncontended) and the slow path
        of :meth:`index_read` falls back to it.  Lock-based modes return
        a null context: their table locks already exclude readers from
        writers.
        """
        if not self.mvcc:
            return nullcontext()
        try:
            return self._latches[table]
        except KeyError:
            with self._latch_registry:
                return self._latches.setdefault(table, threading.Lock())

    #: optimistic index-read attempts before falling back to the latch
    _INDEX_READ_RETRIES = 64

    def index_read(self, table: str, index, fn):
        """Run the index read ``fn()`` safely against concurrent mutation.

        MVCC snapshot readers hold no table lock, so a B-tree node split
        could tear under their descent.  Rather than a latch per read
        (which serialises the whole lock-free read fleet through one
        mutex), reads are **optimistic seqlock-style**: sample the index's
        generation counter, run the read, and accept the result only if
        the generation is unchanged and even (writers bump it to odd
        before mutating and to even after).  A torn read — wrong result
        or a transient exception from a half-split node — is simply
        retried; after ``_INDEX_READ_RETRIES`` failed attempts the reader
        takes the writer latch for guaranteed progress.  Lock-based modes
        run ``fn()`` directly (their table locks exclude writers).
        """
        if not self.mvcc:
            return fn()
        for _ in range(self._INDEX_READ_RETRIES):
            version = index.version
            if version & 1:
                continue  # mutation in flight
            try:
                result = fn()
            except Exception:
                continue  # torn descent; retry
            if index.version == version:
                return result
        with self.index_latch(table):
            return fn()

    # ------------------------------------------------------------------
    # DDL (physical)
    # ------------------------------------------------------------------

    def create_table(
        self, name: str, columns: Sequence[Column], primary_key: str | None = None
    ) -> TableSchema:
        schema = TableSchema(name, list(columns), primary_key)
        self.catalog.add_table(schema)
        self.heaps[name] = HeapTable(schema, mvcc=self.mvcc)
        self.log(
            (
                "create_table",
                name,
                [(c.name, c.type.name, c.nullable) for c in columns],
                primary_key,
            )
        )
        return schema

    def drop_table(self, name: str) -> None:
        for info in self.catalog.indices_for(name):
            self.indices.pop(info.name, None)
        self.catalog.drop_table(name)
        self.heaps.pop(name, None)
        self.log(("drop_table", name))

    def create_index(self, name: str, table: str, column: str, unique: bool = False) -> None:
        """Create a secondary index; kind is inferred from the column type.

        TEXT_LIST columns get an inverted (GIN-like) index; everything else
        a B-tree.  The index is built immediately from the existing heap,
        and published to ``self.indices`` *before* the catalog entry so a
        planner that sees the catalog entry always finds the index.

        In MVCC mode even UNIQUE B-trees are physically multimaps (a key
        may map to several versions of the same logical row until vacuum);
        uniqueness among *live* rows is enforced by :meth:`check_unique`.
        """
        schema = self.catalog.table(table)
        col = schema.column(column)
        kind = "inverted" if col.type is TEXT_LIST else "btree"
        if kind == "inverted" and unique:
            raise CatalogError("inverted indices cannot be UNIQUE")
        # Validate the name up front: publishing into self.indices must
        # never overwrite a live index (a failed duplicate CREATE INDEX
        # has to leave the existing one untouched).
        if name in self.indices:
            raise CatalogError(f"index {name!r} already exists")
        info = IndexInfo(name=name, table=table, column=column, kind=kind, unique=unique)
        index: BTreeIndex | InvertedIndex
        index = InvertedIndex() if kind == "inverted" else BTreeIndex(
            unique=unique and not self.mvcc
        )
        col_idx = schema.column_index(column)
        for rid, row in self.heaps[table].scan():
            index.insert(row[col_idx], rid)
        self.indices[name] = index
        try:
            self.catalog.add_index(info)
        except Exception:
            self.indices.pop(name, None)
            raise
        self.log(("create_index", name, table, column, unique))

    def drop_index(self, name: str) -> IndexInfo:
        info = self.catalog.drop_index(name)
        self.indices.pop(name, None)
        self.log(("drop_index", name))
        return info

    # ------------------------------------------------------------------
    # Physical row operations (caller holds the table's write lock)
    # ------------------------------------------------------------------

    def heap(self, table: str) -> HeapTable:
        self.catalog.table(table)  # raises CatalogError for unknown tables
        return self.heaps[table]

    def index_add(self, table: str, row: tuple, rid: int) -> None:
        schema = self.catalog.table(table)
        if not self.mvcc:
            for info in self.catalog.indices_for(table):
                key = row[schema.column_index(info.column)]
                self.indices[info.name].insert(key, rid)
            return
        latch = self.index_latch(table)
        for info in self.catalog.indices_for(table):
            key = row[schema.column_index(info.column)]
            index = self.indices[info.name]
            with latch:
                index.version += 1  # odd: mutation in flight
                try:
                    index.insert(key, rid)
                finally:
                    index.version += 1

    def index_remove(self, table: str, row: tuple, rid: int) -> None:
        schema = self.catalog.table(table)
        if not self.mvcc:
            for info in self.catalog.indices_for(table):
                key = row[schema.column_index(info.column)]
                self.indices[info.name].remove(key, rid)
            return
        latch = self.index_latch(table)
        for info in self.catalog.indices_for(table):
            key = row[schema.column_index(info.column)]
            index = self.indices[info.name]
            with latch:
                index.version += 1
                try:
                    index.remove(key, rid)
                finally:
                    index.version += 1

    def check_unique(self, table: str, schema: TableSchema, row: tuple, skip_rid: int | None) -> None:
        """Pre-check unique indices so a failed insert leaves no trace.

        Index hits are filtered through the heap's *live* view: in MVCC
        mode a unique index retains entries for dead versions until
        vacuum, and those must not fail a new insert of the same key.
        """
        heap = self.heaps[table]
        for info in self.catalog.indices_for(table):
            if not info.unique:
                continue
            key = row[schema.column_index(info.column)]
            if key is None:
                continue
            with self.index_latch(table):
                hits = self.indices[info.name].search(key)
            if any(r != skip_rid and heap.fetch(r) is not None for r in hits):
                raise ConstraintError(
                    f"duplicate key {key!r} violates unique index {info.name!r}"
                )

    def insert_row(self, table: str, schema: TableSchema, row: tuple) -> int:
        """Heap insert + index maintenance + WAL record, unique-checked."""
        self.check_unique(table, schema, row, skip_rid=None)
        rid = self.heaps[table].insert(row)
        try:
            self.index_add(table, row, rid)
        except ConstraintError:
            self.heaps[table].delete(rid)  # xmax=0: never visible
            raise
        self.log(("insert", table, rid, row))
        self._record_change(("insert", table, rid, row))
        return rid

    def insert_version(self, table: str, row: tuple) -> int:
        """Heap insert + index maintenance + WAL record, *not* unique-checked.

        The executor's MVCC-style update protocol uses this for the new
        row version after running its own :meth:`check_unique` with the
        old version's rid excluded.
        """
        rid = self.heaps[table].insert(row)
        self.index_add(table, row, rid)
        self.log(("insert", table, rid, row))
        self._record_change(("insert", table, rid, row))
        return rid

    def delete_row(self, table: str, rid: int, row: tuple) -> None:
        """Heap tombstone + WAL record (+ index removal outside MVCC).

        In MVCC mode the index entries stay until vacuum so snapshot
        readers can still resolve the dead version through an index scan.
        """
        session = self._active_session()
        if self.mvcc:
            # Pending (xmax=None) while a session is open — the commit
            # stamps the real timestamp so concurrent snapshots keep
            # seeing the old version until then.
            self.heaps[table].delete(rid, xmax=None if session is not None else 0.0)
        else:
            # Lock-based modes have no snapshot readers: the version is
            # dead-to-everyone immediately and never needs a stamp.  With
            # no session there is no rollback either, so the payload is
            # dropped outright (only size accounting survives to vacuum).
            self.index_remove(table, row, rid)
            self.heaps[table].delete(rid, retain=session is not None)
        self.log(("delete", table, rid))
        if session is not None:
            session.changes.append(("delete", table, rid, row))

    def vacuum_table(self, name: str, horizon: float = NO_HORIZON) -> int:
        """Reclaim dead versions up to ``horizon``; returns slots reclaimed.

        In MVCC mode the retained index entries of each reclaimed version
        are removed here.  The reclaimed rid list is logged so WAL replay
        frees the same slots in the same order (rid-allocation
        determinism).
        """
        heap = self.heap(name)
        if self.mvcc:
            for rid, row in heap.reclaimable_versions(horizon):
                self.index_remove(name, row, rid)
        reclaimed = heap.vacuum(horizon)
        self.log(("vacuum", name, reclaimed))
        return len(reclaimed)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def replay(self, path: str) -> None:
        """Rebuild state from the WAL (crash recovery).

        Runs before the engine accepts statements, so no locks are taken;
        ``replaying`` suppresses re-logging.  A torn trailing record
        (crash mid-append or mid-group-commit) is dropped and the file is
        truncated back to its intact prefix, so records appended after
        recovery stay replayable.
        """
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            raw = handle.read()
        data = self._cipher.apply(raw, 0) if self._cipher is not None else raw
        valid = wal_mod.valid_prefix_length(data)
        if valid < len(raw):
            with open(path, "r+b") as handle:
                handle.truncate(valid)
        records = list(wal_mod.decode_records(data[:valid]))
        if not records:
            return
        self.replaying = True
        try:
            for record in records:
                self._replay_record(record)
        finally:
            self.replaying = False

    def _replay_record(self, record: tuple) -> None:
        op = record[0]
        if op == "create_table":
            _, name, cols, pk = record
            columns = [
                Column(cname, type_by_name(tname), nullable)
                for cname, tname, nullable in cols
            ]
            self.create_table(name, columns, primary_key=pk)
            if pk is not None:
                self.create_index(f"{name}_pkey", name, pk, unique=True)
        elif op == "drop_table":
            self.drop_table(record[1])
        elif op == "create_index":
            _, name, table, column, unique = record
            existing = {
                i.name for t in self.catalog.tables() for i in self.catalog.indices_for(t)
            }
            if name not in existing:
                self.create_index(name, table, column, unique=unique)
        elif op == "drop_index":
            self.drop_index(record[1])
        elif op == "insert":
            _, table, rid, row = record
            heap = self.heaps[table]
            got = heap.insert(row)
            if got != rid:
                raise SQLError(f"WAL replay divergence on {table}: rid {got} != {rid}")
            heap.stamp_insert(rid, 0)  # recovered rows predate every snapshot
            self.index_add(table, row, rid)
        elif op == "update":
            _, table, rid, row = record
            heap = self.heaps[table]
            old = heap.fetch(rid)
            if old is None:
                raise SQLError(f"WAL replay: update of missing rid {rid}")
            self.index_remove(table, old, rid)
            heap.update(rid, row)
            self.index_add(table, row, rid)
        elif op == "delete":
            _, table, rid = record
            heap = self.heaps[table]
            old = heap.fetch(rid)
            if old is None:
                raise SQLError(f"WAL replay: delete of missing rid {rid}")
            if not self.mvcc:
                self.index_remove(table, old, rid)
            heap.delete(rid)  # recovered deletes predate every snapshot
        elif op == "undelete":
            # Rollback compensation: resurrect the tombstoned version.
            _, table, rid = record
            heap = self.heaps[table]
            restored = heap.undelete(rid)
            if not self.mvcc:
                self.index_add(table, restored, rid)
        elif op == "vacuum":
            name = record[1]
            heap = self.heaps[name]
            rids = record[2] if len(record) > 2 else None
            if self.mvcc:
                for rid in (rids if rids is not None else heap.dead_rids()):
                    row = heap.dead_row(rid)
                    if row is not None:
                        self.index_remove(name, row, rid)
            if rids is None:  # legacy record: full reclaim
                heap.vacuum()
            else:
                heap.vacuum_rids(rids)
        else:
            raise SQLError(f"unknown WAL record {op!r}")

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
