"""csvlog — PostgreSQL-style statement/audit logging for minisql.

Section 5.2: "For logging, in addition to the built-in csvlog, we set up a
row-level security policy to record query responses."  The paper's GDPR
retrofit therefore logs *every* statement, including SELECTs and the rows
they returned, to a CSV file.  That is this module: one CSV line per
statement with timestamp, statement kind, table, detail, and the number of
rows touched/returned.  Writes are buffered and flushed on a one-second
window like the rest of the durability machinery.

The 30-40% logging overhead the paper measures for PostgreSQL is this
file's write path being taken on every operation.
"""

from __future__ import annotations

import io
import os
import threading

from repro.common.clock import Clock, SystemClock


def _csv_escape(field: str) -> str:
    if any(ch in field for ch in ',"\n'):
        return '"' + field.replace('"', '""') + '"'
    return field


class CSVLogger:
    """Append-only statement log with a 1-second flush window."""

    def __init__(
        self,
        path: str,
        log_reads: bool = True,
        clock: Clock | None = None,
        flush_window: float = 1.0,
        cipher=None,
    ) -> None:
        self.path = path
        self.log_reads = log_reads
        self._clock = clock or SystemClock()
        self._flush_window = flush_window
        self._file = open(path, "ab")
        self._buffer = io.BytesIO()
        self._last_flush = self._clock.now()
        self._lines = 0
        self._cipher = cipher
        self._offset = self._file.tell()
        # With per-table reader-writer locking, several readers may log
        # SELECT responses concurrently; the RLock keeps line framing and
        # the cipher offset consistent (flush() is called under log()).
        self._lock = threading.RLock()

    @property
    def lines_logged(self) -> int:
        return self._lines

    def should_log(self, kind: str) -> bool:
        if kind in ("SELECT",):
            return self.log_reads
        return True

    def log(self, kind: str, table: str, detail: str, rows: int) -> None:
        if not self.should_log(kind):
            return
        timestamp = f"{self._clock.now():.6f}"
        line = ",".join(
            [timestamp, kind, _csv_escape(table), _csv_escape(detail), str(rows)]
        )
        data = (line + "\n").encode("utf-8")
        with self._lock:
            if self._cipher is not None:
                data = self._cipher.apply(data, self._offset)
            self._offset += len(data)
            self._buffer.write(data)
            self._lines += 1
            now = self._clock.now()
            if now - self._last_flush >= self._flush_window:
                self.flush()

    def flush(self) -> None:
        with self._lock:
            data = self._buffer.getvalue()
            if data:
                self._file.write(data)
                self._file.flush()
                os.fsync(self._file.fileno())
                self._buffer = io.BytesIO()
            self._last_flush = self._clock.now()

    def size_bytes(self) -> int:
        with self._lock:
            return self._file.tell() + len(self._buffer.getvalue())

    #: tail window per GET-SYSTEM-LOGS call; bounds per-query log cost
    TAIL_WINDOW_BYTES = 1 << 18

    def tail(self, count: int = 10) -> list[str]:
        """Last ``count`` lines (regulator GET-SYSTEM-LOGS fast path).

        Reads only the trailing window of the file so the cost per query
        is bounded regardless of how large the audit log has grown.
        """
        self.flush()
        size = os.path.getsize(self.path)
        with open(self.path, "rb") as handle:
            if size > self.TAIL_WINDOW_BYTES:
                offset = size - self.TAIL_WINDOW_BYTES
                handle.seek(offset)
                data = handle.read()
                if self._cipher is not None:
                    data = self._cipher.apply(data, offset)
                newline = data.find(b"\n")
                data = data[newline + 1:] if newline != -1 else b""
            else:
                data = handle.read()
                if self._cipher is not None:
                    data = self._cipher.apply(data, 0)
        lines = data.decode("utf-8", errors="replace").splitlines()
        return lines[-count:]

    def lines_between(self, start: float, end: float) -> list[str]:
        """Log lines whose timestamp falls in [start, end] (G 33/34 ranges).

        Time-ranged investigations scan the whole file — a deliberate cost
        regulatory queries pay (the paper's G 33/34 discussion).
        """
        self.flush()
        out = []
        with open(self.path, "rb") as handle:
            data = handle.read()
        if self._cipher is not None:
            data = self._cipher.apply(data, 0)
        for line in data.decode("utf-8", errors="replace").splitlines():
            head = line.split(",", 1)[0]
            try:
                ts = float(head)
            except ValueError:
                continue
            if start <= ts <= end:
                out.append(line.rstrip("\n"))
        return out

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self.flush()
                self._file.close()
