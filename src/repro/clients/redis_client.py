"""GDPR client stub for minikv (the Redis-like engine).

Mirrors how GDPRbench drives Redis (Section 5.1):

* each personal record is a hash at ``rec:<key>`` whose fields are the
  data plus the seven metadata attributes (and ``EXP``, the absolute
  expiry deadline the controller needs for purge-by-TTL);
* Redis has **no secondary indices**, so every metadata-conditioned query
  (by user, purpose, objection, sharing...) is a full keyspace SCAN with a
  client-side filter — the O(n) access the paper blames for Redis' 4
  orders of magnitude GDPRbench slowdown;
* encryption in transit (the Stunnel analogue) wraps every request and
  response payload on a loopback secure link;
* metadata-based access control is enforced here in the client, exactly
  as the paper does.

YCSB rows live in hashes at ``user:<key>``; an in-client sorted key list
plays the role the YCSB Redis binding gives to a ZSET index for scans.

Scaling retrofits (the ROADMAP's production-engine track):

* ``client_indices=True`` maintains SET reverse indices on USR, PUR, OBJ,
  DEC, and SHR (plus a ``midx:keys`` master set so negative queries like
  READ-DATA-BY-OBJ resolve as a set difference), the §7.2
  "efficient metadata indexing" challenge;
* the same switch arms a client-side **expiry index** (lazy min-heap of
  EXP deadlines) so DELETE-RECORD-BY-TTL verifies only the due candidates
  instead of sweeping every record's EXP field;
* multi-record queries (delete-by-usr/pur, indexed reads, metadata group
  updates) run through engine **pipelines**: one multi-stripe lock
  acquisition, one AOF group commit, and one wire round-trip per batch
  instead of per record;
* :meth:`RedisGDPRClient.pipeline` exposes the same batching for YCSB
  read/update/insert streams, and ``stripes``/``aof_batch_size`` forward
  the engine's lock-striping and fsync group-commit knobs.
"""

from __future__ import annotations

import bisect
import heapq
import os
import pickle
import shutil
import tempfile
import threading
from typing import Iterable, Sequence

from repro.common.clock import Clock, SystemClock
from repro.crypto.tls import LoopbackSecureLink
from repro.gdpr.acl import Principal
from repro.gdpr.audit import AuditEvent, events_from_aof
from repro.gdpr.record import PersonalRecord, format_ttl, parse_ttl
from repro.minikv.engine import MiniKV, MiniKVConfig
from repro.minikv.sharded import ShardedMiniKV, open_minikv, shard_aof_path

from .base import FeatureSet, GDPRClient, GDPRPipeline, normalise_attribute
from .futures import autopipelined

_REC_PREFIX = "rec:"
_YCSB_PREFIX = "user:"
_SCAN_BATCH = 256
#: Max commands per engine pipeline: bounds multi-stripe lock hold time.
_PIPELINE_CHUNK = 256


#: queue kinds that resolve to a single engine command (batched into one
#: engine pipeline); everything else runs through its own already-pipelined
#: multi-record implementation inside the batch stream
_ENGINE_POINT_KINDS = frozenset({
    "read", "update", "insert", "read-data-by-key", "read-metadata-by-key",
})


class RedisClientPipeline(GDPRPipeline):
    """minikv implementation of the shared :class:`GDPRPipeline` contract.

    Executes a queued batch with a single request and a single response
    crossing the (possibly TLS) wire — the client half of Redis
    pipelining.  Point operations (the YCSB primitives plus
    ``read-data-by-key`` / ``read-metadata-by-key``, the dominant ops of
    the processor and customer workloads) coalesce into engine pipelines:
    one multi-stripe lock acquisition, one expiry tick, one AOF group
    commit per run of consecutive point ops.  Multi-record GDPR
    operations (``read-data-by-pur``, ``delete-record-by-ttl``,
    ``update-metadata-by-*``, ...) flush the pending point run and then
    execute through their own internally-pipelined engines — a Redis
    client cannot fuse a SCAN-shaped query into a static command batch.

    Queueing methods return pending
    :class:`~repro.clients.futures.ResultFuture` slots; :meth:`execute`
    returns the real responses in queue order.  Failures — including
    per-operation access-control denials — are captured per slot and the
    first is raised after the batch completes.
    """

    def __init__(self, client: "RedisGDPRClient", parent=None) -> None:
        super().__init__(parent)
        self._client = client

    def _flush_points(self, buffered: list, responses: list, errors: list) -> None:
        """Run buffered point ops as one engine pipeline; fill their slots."""
        if not buffered:
            return
        client = self._client
        arm_ttl = client.features.timely_deletion
        pipe = client.engine.pipeline()
        for _slot, kind, key, _payload in buffered:
            if kind in ("read-data-by-key", "read-metadata-by-key"):
                pipe.hgetall(_REC_PREFIX + key)
                continue
            redis_key = _YCSB_PREFIX + key
            if kind == "read":
                pipe.hgetall(redis_key)
            elif kind == "update":
                pipe.hmset_if_exists(
                    redis_key, {f: v.encode() for f, v in _payload.items()}
                )
            else:  # insert
                pipe.hmset(redis_key, {f: v.encode() for f, v in _payload.items()})
                if arm_ttl:
                    pipe.expire(redis_key, client.YCSB_TTL_SECONDS)
        # errors ride in their result slots so one poisoned command
        # cannot void its batch-mates (the per-slot capture below)
        raw = pipe.execute(raise_on_error=False)
        inserted: list[str] = []
        cursor = 0
        for slot, kind, key, payload in buffered:
            result = raw[cursor]
            cursor += 1
            try:
                if isinstance(result, Exception):
                    raise result
                if kind == "read":
                    if not result:
                        responses[slot] = None
                    elif payload is None:
                        responses[slot] = {f: v.decode() for f, v in result.items()}
                    else:
                        responses[slot] = {
                            f: v.decode() for f, v in result.items() if f in payload
                        }
                elif kind == "update":
                    responses[slot] = result
                elif kind == "insert":
                    if arm_ttl:
                        cursor += 1  # the paired EXPIRE result
                    inserted.append(key)
                    responses[slot] = None
                else:  # read-data-by-key / read-metadata-by-key
                    principal = payload
                    op = kind
                    client.acl.check_operation(principal, op)
                    if not result:
                        responses[slot] = None
                        continue
                    record = client._record_from_fields(key, result)
                    if op == "read-data-by-key":
                        client.acl.check_record_access(principal, record)
                        responses[slot] = record.data
                    else:
                        client.acl.check_metadata_access(principal, record)
                        responses[slot] = record.metadata()
            except Exception as exc:  # captured per slot, batch continues
                responses[slot] = exc
                errors.append(exc)
        if inserted:
            with client._ycsb_keys_lock:
                for key in inserted:
                    idx = bisect.bisect_left(client._ycsb_keys, key)
                    if idx >= len(client._ycsb_keys) or client._ycsb_keys[idx] != key:
                        client._ycsb_keys.insert(idx, key)
        buffered.clear()

    def _run_multi(self, kind: str, key: str, payload):
        """One multi-record GDPR op through its single-op implementation."""
        client = self._client
        if kind == "delete-record-by-ttl":
            return client.delete_record_by_ttl(payload)
        if kind.startswith("update-metadata-by-"):
            principal, attribute, value = payload
            method = getattr(client, kind.replace("-", "_"))
            return method(principal, key, attribute, value)
        # read-data-by-{pur,usr,obj,dec} / read-metadata-by-usr
        method = getattr(client, kind.replace("-", "_"))
        return method(payload, key)

    def _run_ops(self, ops) -> tuple[list, list[Exception]]:
        client = self._client
        # One request round-trip carries the whole batch.  Multi-record
        # ops wire their own full request inside their single-op
        # implementation, so their slots travel as bare kind markers here
        # (same no-double-count rule as the response frame below).
        client._wire([
            (kind, key) if kind in _ENGINE_POINT_KINDS else (kind,)
            for kind, key, _ in ops
        ])
        responses: list = [None] * len(ops)
        errors: list[Exception] = []
        buffered: list = []  # (slot, kind, key, payload) point-op run
        multi_slots: set[int] = set()
        for slot, (kind, key, payload) in enumerate(ops):
            if kind in _ENGINE_POINT_KINDS:
                buffered.append((slot, kind, key, payload))
                continue
            multi_slots.add(slot)
            self._flush_points(buffered, responses, errors)
            try:
                responses[slot] = self._run_multi(kind, key, payload)
            except Exception as exc:
                responses[slot] = exc
                errors.append(exc)
        self._flush_points(buffered, responses, errors)
        # ...and one response round-trip carries the point results back.
        # Multi-record responses already crossed the wire inside their
        # single-op implementations; shipping them again here would
        # double-count their serialisation, so their slots travel as
        # placeholders in the batch frame.
        client._wire([
            None if slot in multi_slots else response
            for slot, response in enumerate(responses)
        ])
        return responses, errors


@autopipelined
class RedisGDPRClient(GDPRClient):
    """DB-interface stub translating GDPR queries into minikv commands."""

    engine_name = "redis"

    def __init__(
        self,
        features: FeatureSet | None = None,
        data_dir: str | None = None,
        clock: Clock | None = None,
        expiry_seed: int = 0,
        engine_ttl: bool = True,
        ttl_algorithm: str = "",
        client_indices: bool = False,
        stripes: int = 1,
        aof_batch_size: int = 1,
        shards: int = 1,
        transport: str = "pipe",
        shard_addresses: tuple | None = None,
        ring_vnodes: int | None = None,
    ) -> None:
        super().__init__(features or FeatureSet.none())
        self.clock = clock or SystemClock()
        self._owns_dir = data_dir is None
        self._data_dir = data_dir or tempfile.mkdtemp(prefix="repro-minikv-")
        self._aof_path: str | None = None
        if self.features.monitoring:
            self._aof_path = os.path.join(self._data_dir, "redis.aof")
        self._engine_ttl = engine_ttl
        engine_config = MiniKVConfig(
            encryption_at_rest=self.features.encryption,
            strict_ttl=self.features.timely_deletion,
            aof_path=self._aof_path,
            fsync="everysec",
            log_reads=self.features.monitoring,
            expiry_seed=expiry_seed,
            ttl_algorithm=ttl_algorithm,
            stripes=stripes,
            aof_batch_size=aof_batch_size,
            shards=shards,
            transport=transport,
            shard_addresses=shard_addresses,
            ring_vnodes=ring_vnodes,
        )
        # shards=1 -> the paper's in-process engine on the client clock
        # (byte-identical to the seed construction path); shards>1 -> the
        # multi-process router of docs/sharding.md, whose command surface
        # is identical, so everything below — pipelines included — routes
        # transparently.  The factory rejects a custom clock when sharded
        # (workers keep their own system clocks), so the sharded branch
        # forwards the caller's clock argument, not the resolved default.
        self.engine: MiniKV | ShardedMiniKV = open_minikv(
            engine_config, clock=self.clock if shards <= 1 else clock
        )
        self._link = LoopbackSecureLink(enabled=self.features.encryption)
        self._ycsb_keys: list[str] = []  # sorted; the ZSET-index analogue
        self._ycsb_keys_lock = threading.Lock()
        #: §7.2 "efficient metadata indexing" for a KV store: client-
        #: maintained SET reverse indices on USR, PUR, OBJ, DEC, and SHR
        #: (how production Redis deployments index secondary attributes),
        #: plus a master key set for negative queries.  Lookups fall back
        #: to SCAN when indices are off; stale entries left by engine-side
        #: TTL expiry are cleaned lazily on read.
        self._client_indices = client_indices
        if client_indices:
            self.features.metadata_indexing = True
        #: Client-side expiry index (the ROADMAP's last scan-bound path):
        #: a lazy min-heap of (EXP deadline, key) fed by every store and
        #: TTL update.  DELETE-RECORD-BY-TTL pops due entries and verifies
        #: each candidate's current EXP instead of sweeping every record's
        #: EXP field; a TTL extension simply leaves a stale heap entry
        #: behind, discarded when its verification fetch disagrees.
        self._exp_heap: list[tuple[float, str]] = []
        self._exp_lock = threading.Lock()

    def _exp_index_add(self, deadline: float, key: str) -> None:
        if self._client_indices:
            with self._exp_lock:
                heapq.heappush(self._exp_heap, (deadline, key))

    def pipeline(self) -> RedisClientPipeline:
        """A client command batch (one engine pipeline + one wire trip)."""
        return RedisClientPipeline(self)

    # ------------------------------------------------------------------
    # Wire helpers (the Stunnel boundary)
    # ------------------------------------------------------------------

    def _wire(self, payload) -> None:
        """Push a request or response across the client<->server boundary.

        Every configuration pays protocol serialisation (real clients
        always encode requests/responses — RESP here); the encryption
        feature additionally runs the serialised bytes through the TLS
        channel, so the *marginal* cost of encryption is the cipher work,
        matching how Stunnel layers on top of the existing protocol.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self._link.enabled:
            self._link.to_server(blob)

    # ------------------------------------------------------------------
    # Record <-> hash translation
    # ------------------------------------------------------------------

    @staticmethod
    def _fields_from_record(record: PersonalRecord, expiry_at: float) -> dict[str, bytes]:
        return {
            "data": record.data.encode(),
            "PUR": ",".join(record.purposes).encode(),
            "TTL": format_ttl(record.ttl_seconds).encode(),
            "USR": record.user.encode(),
            "OBJ": ",".join(record.objections).encode(),
            "DEC": ",".join(record.decisions).encode(),
            "SHR": ",".join(record.shared_with).encode(),
            "SRC": record.source.encode(),
            "EXP": repr(expiry_at).encode(),
        }

    @staticmethod
    def _record_from_fields(key: str, fields: dict[str, bytes]) -> PersonalRecord:
        def text(name: str) -> str:
            return fields.get(name, b"").decode()

        def as_list(name: str) -> tuple:
            raw = text(name)
            return tuple(raw.split(",")) if raw else ()

        return PersonalRecord(
            key=key,
            data=text("data"),
            purposes=as_list("PUR"),
            ttl_seconds=parse_ttl(text("TTL")) if text("TTL") else 0.0,
            user=text("USR"),
            objections=as_list("OBJ"),
            decisions=as_list("DEC"),
            shared_with=as_list("SHR"),
            source=text("SRC"),
        )

    # -- client-side reverse indices (SET per attribute value) ------------

    @staticmethod
    def _usr_index(user: str) -> str:
        return f"midx:usr:{user}"

    @staticmethod
    def _pur_index(purpose: str) -> str:
        return f"midx:pur:{purpose}"

    @staticmethod
    def _obj_index(purpose: str) -> str:
        return f"midx:obj:{purpose}"

    @staticmethod
    def _dec_index(decision: str) -> str:
        return f"midx:dec:{decision}"

    @staticmethod
    def _shr_index(third_party: str) -> str:
        return f"midx:shr:{third_party}"

    @staticmethod
    def _all_index() -> str:
        """Master SET of every record key: the universe for negative
        queries (READ-DATA-BY-OBJ keeps records NOT objecting)."""
        return "midx:keys"

    def _index_keys(self, record: PersonalRecord) -> list[str]:
        """Every reverse-index SET a record belongs to."""
        keys = [self._all_index(), self._usr_index(record.user)]
        keys.extend(self._pur_index(p) for p in record.purposes)
        keys.extend(self._obj_index(o) for o in record.objections)
        keys.extend(self._dec_index(d) for d in record.decisions)
        keys.extend(self._shr_index(s) for s in record.shared_with)
        return keys

    def _index_add(self, record: PersonalRecord, pipe=None) -> None:
        member = record.key.encode()
        own_pipe = pipe is None
        if own_pipe:
            pipe = self.engine.pipeline()
        for index_key in self._index_keys(record):
            pipe.sadd(index_key, member)
        if own_pipe:
            pipe.execute()

    def _index_remove(self, record: PersonalRecord, pipe=None) -> None:
        member = record.key.encode()
        own_pipe = pipe is None
        if own_pipe:
            pipe = self.engine.pipeline()
        for index_key in self._index_keys(record):
            pipe.srem(index_key, member)
        if own_pipe:
            pipe.execute()

    def _fetch_member_records(
        self, members, stale_index_key: str
    ) -> list[PersonalRecord]:
        """Pipelined fetch of the records behind index SET ``members``.

        Each chunk of HGETALLs runs as one engine pipeline and its
        responses cross the wire as one payload.  Entries whose hash has
        vanished (engine-side TTL expiry or races) are stale; they are
        dropped from ``stale_index_key`` lazily here.
        """
        members = list(members)
        out: list[PersonalRecord] = []
        stale: list[bytes] = []
        for start in range(0, len(members), _PIPELINE_CHUNK):
            chunk = members[start:start + _PIPELINE_CHUNK]
            pipe = self.engine.pipeline()
            for member in chunk:
                pipe.hgetall(_REC_PREFIX + member.decode())
            responses = pipe.execute()
            live = []
            for member, fields in zip(chunk, responses):
                if not fields:
                    stale.append(member)
                    continue
                live.append(fields)
                out.append(self._record_from_fields(member.decode(), fields))
            if live:
                self._wire(live)  # one response round-trip per chunk
        if stale:
            self.engine.srem(stale_index_key, *stale)  # lazy cleanup
        return out

    def _indexed_records(self, index_key: str) -> list[PersonalRecord] | None:
        """Records behind one reverse-index SET, or None if indices are off."""
        if not self._client_indices:
            return None
        return self._fetch_member_records(self.engine.smembers(index_key), index_key)

    def _store(self, record: PersonalRecord) -> None:
        expiry_at = self.clock.now() + record.ttl_seconds
        redis_key = _REC_PREFIX + record.key
        previous = self._fetch(record.key) if self._client_indices else None
        self.engine.hmset(redis_key, self._fields_from_record(record, expiry_at))
        if self._engine_ttl and record.ttl_seconds > 0:
            self.engine.expire(redis_key, record.ttl_seconds)
        if self._client_indices:
            if previous is not None:
                self._index_remove(previous)
            self._index_add(record)
            self._exp_index_add(expiry_at, record.key)

    def _fetch(self, key: str) -> PersonalRecord | None:
        fields = self.engine.hgetall(_REC_PREFIX + key)
        if not fields:
            return None
        return self._record_from_fields(key, fields)

    def _iter_records(self) -> Iterable[PersonalRecord]:
        """Full keyspace traversal — the only metadata 'index' Redis has.

        Redis cannot filter on hash fields server-side, so every record
        crosses the client<->server boundary on every metadata-conditioned
        query: each HGETALL response is pushed through the wire layer.
        This transfer amplification is the architectural reason the paper's
        Redis runs GDPR workloads orders of magnitude slower than an RDBMS
        that filters before shipping results.
        """
        cursor = 0
        while True:
            cursor, keys = self.engine.scan(cursor, match=_REC_PREFIX + "*", count=_SCAN_BATCH)
            for redis_key in keys:
                fields = self.engine.hgetall(redis_key)
                if fields:
                    self._wire(fields)
                    yield self._record_from_fields(redis_key[len(_REC_PREFIX):], fields)
            if cursor == 0:
                return

    # ------------------------------------------------------------------
    # Load phase
    # ------------------------------------------------------------------

    def load_records(self, records: Iterable[PersonalRecord]) -> int:
        loaded = 0
        for record in records:
            self._store(record)
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # CREATE / DELETE
    # ------------------------------------------------------------------

    def create_record(self, principal: Principal, record: PersonalRecord) -> bool:
        self.acl.check_operation(principal, "create-record")
        self._wire(("create-record", record.key))
        self._store(record)
        self._wire(True)
        return True

    def delete_record_by_key(self, principal: Principal, key: str) -> int:
        self.acl.check_operation(principal, "delete-record-by-key")
        self._wire(("delete-record-by-key", key))
        record = self._fetch(key)
        if record is None:
            self._wire(0)
            return 0
        self.acl.check_record_access(principal, record, write=True)
        deleted = self.engine.delete(_REC_PREFIX + key)
        if deleted and self._client_indices:
            self._index_remove(record)
        self._wire(deleted)
        return deleted

    def _delete_records(self, victims: list[PersonalRecord]) -> int:
        """Erase a victim list in pipelined chunks (one lock + one group
        commit per chunk).  Index removals are queued unconditionally: if
        the record vanished concurrently its index entries are stale
        anyway, and SREM on a gone member is a no-op."""
        deleted = 0
        for start in range(0, len(victims), _PIPELINE_CHUNK):
            chunk = victims[start:start + _PIPELINE_CHUNK]
            pipe = self.engine.pipeline()
            slots = []
            for record in chunk:
                slots.append(len(pipe))
                pipe.delete(_REC_PREFIX + record.key)
                if self._client_indices:
                    self._index_remove(record, pipe=pipe)
            results = pipe.execute()
            deleted += sum(results[slot] for slot in slots)
        return deleted

    def delete_record_by_pur(self, principal: Principal, purpose: str) -> int:
        self.acl.check_operation(principal, "delete-record-by-pur")
        self._wire(("delete-record-by-pur", purpose))
        victims = self._indexed_records(self._pur_index(purpose))
        if victims is None:
            victims = [r for r in self._iter_records() if purpose in r.purposes]
        deleted = self._delete_records(victims)
        self._wire(deleted)
        return deleted

    def delete_record_by_ttl(self, principal: Principal) -> int:
        self.acl.check_operation(principal, "delete-record-by-ttl")
        self._wire(("delete-record-by-ttl",))
        # Engine-side: erase everything whose Redis TTL has lapsed.
        deleted = sum(
            1 for key in self.engine.purge_expired() if key.startswith(_REC_PREFIX)
        )
        now = self.clock.now()
        if self._client_indices:
            # Expiry-indexed path: pop due (deadline, key) entries and
            # verify each candidate's live EXP — O(expired), not O(n).
            deleted += self._delete_records(self._expired_via_exp_index(now))
        else:
            # Records tracked only by the EXP metadata field (covers
            # engine_ttl=False deployments); full scan, as a controller
            # without indices must.
            for record in list(self._iter_records()):
                fields = self.engine.hgetall(_REC_PREFIX + record.key)
                deadline = float(fields.get("EXP", b"inf"))
                if deadline <= now:
                    deleted += self.engine.delete(_REC_PREFIX + record.key)
        self._wire(deleted)
        return deleted

    def _expired_via_exp_index(self, now: float) -> list[PersonalRecord]:
        """Resolve the expiry index's due entries to genuinely expired records.

        Heap entries are lazy: a TTL extension leaves the old deadline in
        place and pushes a new one, and records deleted by other paths (or
        by engine-side expiry) leave entries with no hash behind.  Each
        candidate's hash is therefore fetched (pipelined, one chunk per
        round-trip) and kept only when its *current* EXP has passed.
        """
        candidates: list[str] = []
        with self._exp_lock:
            while self._exp_heap and self._exp_heap[0][0] <= now:
                candidates.append(heapq.heappop(self._exp_heap)[1])
        victims: list[PersonalRecord] = []
        seen: set[str] = set()
        fresh: list[str] = []
        for key in candidates:
            if key not in seen:
                seen.add(key)
                fresh.append(key)
        for start in range(0, len(fresh), _PIPELINE_CHUNK):
            chunk = fresh[start:start + _PIPELINE_CHUNK]
            pipe = self.engine.pipeline()
            for key in chunk:
                pipe.hgetall(_REC_PREFIX + key)
            for key, fields in zip(chunk, pipe.execute()):
                if not fields:
                    continue  # already gone; entry was stale
                if float(fields.get("EXP", b"inf")) <= now:
                    victims.append(self._record_from_fields(key, fields))
                # else: TTL was extended; its newer heap entry survives
        return victims

    def delete_record_by_usr(self, principal: Principal, user: str) -> int:
        self.acl.check_operation(principal, "delete-record-by-usr")
        self._wire(("delete-record-by-usr", user))
        victims = self._indexed_records(self._usr_index(user))
        if victims is None:
            victims = [r for r in self._iter_records() if r.user == user]
        deleted = self._delete_records(victims)
        self._wire(deleted)
        return deleted

    # ------------------------------------------------------------------
    # READ-DATA
    # ------------------------------------------------------------------

    def read_data_by_key(self, principal: Principal, key: str) -> str | None:
        self.acl.check_operation(principal, "read-data-by-key")
        self._wire(("read-data-by-key", key))
        record = self._fetch(key)
        if record is None:
            self._wire(None)
            return None
        self.acl.check_record_access(principal, record)
        self._wire(record.data)
        return record.data

    def _read_data_where(self, principal: Principal, op: str, keep) -> list:
        self.acl.check_operation(principal, op)
        self._wire((op,))
        out = []
        for record in self._iter_records():
            if keep(record):
                self.acl.check_record_access(principal, record)
                out.append((record.key, record.data))
        self._wire(out)
        return out

    def _project_records(self, principal: Principal, op: str,
                         records, keep, metadata: bool) -> list:
        """ACL-checked projection of a pre-fetched record list: the one
        shared tail of every indexed READ-DATA / READ-METADATA query."""
        self.acl.check_operation(principal, op)
        self._wire((op,))
        out = []
        for record in records:
            if keep(record):
                if metadata:
                    self.acl.check_metadata_access(principal, record)
                    out.append((record.key, record.metadata()))
                else:
                    self.acl.check_record_access(principal, record)
                    out.append((record.key, record.data))
        self._wire(out)
        return out

    def _read_data_from_records(self, principal: Principal, op: str,
                                records, keep) -> list:
        return self._project_records(principal, op, records, keep, metadata=False)

    def _read_data_indexed(self, principal: Principal, op: str,
                           index_key: str, keep) -> list | None:
        """Index-assisted READ-DATA; None when indices are off."""
        records = self._indexed_records(index_key)
        if records is None:
            return None
        return self._project_records(principal, op, records, keep, metadata=False)

    def _read_metadata_indexed(self, principal: Principal, op: str,
                               index_key: str, keep) -> list | None:
        """Index-assisted READ-METADATA; None when indices are off."""
        records = self._indexed_records(index_key)
        if records is None:
            return None
        return self._project_records(principal, op, records, keep, metadata=True)

    def read_data_by_pur(self, principal: Principal, purpose: str) -> list:
        indexed = self._read_data_indexed(
            principal, "read-data-by-pur", self._pur_index(purpose),
            lambda r: purpose in r.purposes,
        )
        if indexed is not None:
            return indexed
        return self._read_data_where(
            principal, "read-data-by-pur", lambda r: purpose in r.purposes
        )

    def read_data_by_usr(self, principal: Principal, user: str) -> list:
        indexed = self._read_data_indexed(
            principal, "read-data-by-usr", self._usr_index(user),
            lambda r: r.user == user,
        )
        if indexed is not None:
            return indexed
        return self._read_data_where(
            principal, "read-data-by-usr", lambda r: r.user == user
        )

    def read_data_by_obj(self, principal: Principal, purpose: str) -> list:
        if self._client_indices:
            # Negative query: records NOT objecting = master set minus the
            # objectors' reverse index, resolved client-side in O(matches).
            members = (
                self.engine.smembers(self._all_index())
                - self.engine.smembers(self._obj_index(purpose))
            )
            records = self._fetch_member_records(members, self._all_index())
            return self._read_data_from_records(
                principal, "read-data-by-obj", records,
                lambda r: purpose not in r.objections,
            )
        return self._read_data_where(
            principal, "read-data-by-obj", lambda r: purpose not in r.objections
        )

    def read_data_by_dec(self, principal: Principal, decision: str) -> list:
        indexed = self._read_data_indexed(
            principal, "read-data-by-dec", self._dec_index(decision),
            lambda r: decision in r.decisions,
        )
        if indexed is not None:
            return indexed
        return self._read_data_where(
            principal, "read-data-by-dec", lambda r: decision in r.decisions
        )

    # ------------------------------------------------------------------
    # READ-METADATA
    # ------------------------------------------------------------------

    def read_metadata_by_key(self, principal: Principal, key: str) -> dict | None:
        self.acl.check_operation(principal, "read-metadata-by-key")
        self._wire(("read-metadata-by-key", key))
        record = self._fetch(key)
        if record is None:
            self._wire(None)
            return None
        self.acl.check_metadata_access(principal, record)
        metadata = record.metadata()
        self._wire(metadata)
        return metadata

    def _read_metadata_where(self, principal: Principal, op: str, keep) -> list:
        self.acl.check_operation(principal, op)
        self._wire((op,))
        out = []
        for record in self._iter_records():
            if keep(record):
                self.acl.check_metadata_access(principal, record)
                out.append((record.key, record.metadata()))
        self._wire(out)
        return out

    def read_metadata_by_usr(self, principal: Principal, user: str) -> list:
        indexed = self._read_metadata_indexed(
            principal, "read-metadata-by-usr", self._usr_index(user),
            lambda r: r.user == user,
        )
        if indexed is not None:
            return indexed
        return self._read_metadata_where(
            principal, "read-metadata-by-usr", lambda r: r.user == user
        )

    def read_metadata_by_shr(self, principal: Principal, third_party: str) -> list:
        indexed = self._read_metadata_indexed(
            principal, "read-metadata-by-shr", self._shr_index(third_party),
            lambda r: third_party in r.shared_with,
        )
        if indexed is not None:
            return indexed
        return self._read_metadata_where(
            principal, "read-metadata-by-shr", lambda r: third_party in r.shared_with
        )

    # ------------------------------------------------------------------
    # UPDATE
    # ------------------------------------------------------------------

    def update_data_by_key(self, principal: Principal, key: str, data: str) -> int:
        self.acl.check_operation(principal, "update-data-by-key")
        self._wire(("update-data-by-key", key))
        record = self._fetch(key)
        if record is None:
            self._wire(0)
            return 0
        self.acl.check_record_access(principal, record, write=True)
        written = self.engine.hset_if_exists(_REC_PREFIX + key, "data", data.encode())
        self._wire(written)
        return written

    #: Metadata attributes carrying a reverse index:
    #: attribute -> (old-record value accessor, index-key builder).
    #: One table so adding an index can't drift between the two roles.
    _INDEXED_ATTRIBUTES = {
        "USR": (lambda record: (record.user,), _usr_index.__func__),
        "PUR": (lambda record: record.purposes, _pur_index.__func__),
        "OBJ": (lambda record: record.objections, _obj_index.__func__),
        "DEC": (lambda record: record.decisions, _dec_index.__func__),
        "SHR": (lambda record: record.shared_with, _shr_index.__func__),
    }

    def _queue_attr_reindex(self, pipe, key: str, attribute: str, canonical,
                            old_record: PersonalRecord | None) -> None:
        """Queue the SREM/SADD moves for one record's attribute change."""
        member = key.encode()
        old_values, index_key_for = self._INDEXED_ATTRIBUTES[attribute]
        new_values = (canonical,) if attribute == "USR" else tuple(canonical)
        if old_record is not None:
            for value in old_values(old_record):
                pipe.srem(index_key_for(value), member)
        for value in new_values:
            pipe.sadd(index_key_for(value), member)

    def _apply_metadata(self, key: str, attribute: str, value,
                        old_record: PersonalRecord | None = None) -> int:
        """Single-record UPDATE-METADATA: a one-element group update, so
        the attribute encodings live only in :meth:`_apply_metadata_batch`."""
        record = old_record
        if record is None or record.key != key:
            record = self._fetch(key)
            if record is None:
                return 0
        return self._apply_metadata_batch([record], attribute, value)

    def _apply_metadata_batch(self, records: list[PersonalRecord],
                              attribute: str, value) -> int:
        """Group UPDATE-METADATA: the attribute writes for a victim chunk
        run as one pipeline, then the follow-ups (TTL re-arm, reverse-index
        moves) for the records actually written run as a second one."""
        attribute = attribute.upper()
        canonical = normalise_attribute(attribute, value)
        changed = 0
        for start in range(0, len(records), _PIPELINE_CHUNK):
            chunk = records[start:start + _PIPELINE_CHUNK]
            pipe = self.engine.pipeline()
            exp_at = None
            if attribute == "TTL":
                exp_at = self.clock.now() + canonical
                payload = {
                    "TTL": format_ttl(canonical).encode(),
                    "EXP": repr(exp_at).encode(),
                }
                for record in chunk:
                    pipe.hmset_if_exists(_REC_PREFIX + record.key, payload)
            elif attribute in ("USR", "SRC"):
                for record in chunk:
                    pipe.hset_if_exists(
                        _REC_PREFIX + record.key, attribute, canonical.encode()
                    )
            else:
                encoded = ",".join(canonical).encode()
                for record in chunk:
                    pipe.hset_if_exists(_REC_PREFIX + record.key, attribute, encoded)
            written_flags = pipe.execute()
            followup = self.engine.pipeline()
            for record, written in zip(chunk, written_flags):
                if not written:
                    continue
                changed += 1
                if attribute == "TTL":
                    self._exp_index_add(exp_at, record.key)
                    if self._engine_ttl and canonical > 0:
                        followup.expire(_REC_PREFIX + record.key, canonical)
                elif self._client_indices and attribute in self._INDEXED_ATTRIBUTES:
                    self._queue_attr_reindex(
                        followup, record.key, attribute, canonical, old_record=record
                    )
            if len(followup):
                followup.execute()
        return changed

    def update_metadata_by_key(self, principal: Principal, key: str, attribute: str, value) -> int:
        self.acl.check_operation(principal, "update-metadata-by-key")
        self._wire(("update-metadata-by-key", key, attribute))
        record = self._fetch(key)
        if record is None:
            self._wire(0)
            return 0
        self.acl.check_metadata_access(principal, record)
        written = self._apply_metadata(key, attribute, value, old_record=record)
        self._wire(written)
        return written

    def _update_metadata_where(self, principal: Principal, op: str, keep, attribute: str, value,
                               index_key: str | None = None) -> int:
        self.acl.check_operation(principal, op)
        self._wire((op, attribute))
        records = self._indexed_records(index_key) if index_key is not None else None
        if records is None:
            records = list(self._iter_records())
        victims = [record for record in records if keep(record)]
        changed = self._apply_metadata_batch(victims, attribute, value)
        self._wire(changed)
        return changed

    def update_metadata_by_pur(self, principal: Principal, purpose: str, attribute: str, value) -> int:
        return self._update_metadata_where(
            principal, "update-metadata-by-pur",
            lambda r: purpose in r.purposes, attribute, value,
            index_key=self._pur_index(purpose),
        )

    def update_metadata_by_usr(self, principal: Principal, user: str, attribute: str, value) -> int:
        return self._update_metadata_where(
            principal, "update-metadata-by-usr",
            lambda r: r.user == user, attribute, value,
            index_key=self._usr_index(user),
        )

    def update_metadata_by_shr(self, principal: Principal, third_party: str, attribute: str, value) -> int:
        return self._update_metadata_where(
            principal, "update-metadata-by-shr",
            lambda r: third_party in r.shared_with, attribute, value,
            index_key=self._shr_index(third_party),
        )

    # ------------------------------------------------------------------
    # GET-SYSTEM
    # ------------------------------------------------------------------

    def get_system_logs(self, principal: Principal, start: float | None = None,
                        end: float | None = None, limit: int = 100) -> list[AuditEvent]:
        self.acl.check_operation(principal, "get-system-logs")
        if self._aof_path is None:
            return []
        self.engine.flush_aof()
        cipher = self.engine._file_cipher
        if isinstance(self.engine, ShardedMiniKV):
            # The audit trail is per-shard (one AOF per worker) and the
            # AOF carries no timestamps, so there is no global recency
            # order to recover.  Split the limit exactly instead: every
            # shard contributes its share of most-recent events (the
            # first ``limit % shards`` shards take the remainder),
            # concatenated in shard order — each shard's own trail stays
            # ordered and no shard can crowd another out.
            paths = self.engine.aof_paths
            events: list[AuditEvent] = []
            for index, path in enumerate(paths):
                share = limit
                if limit:
                    share = limit // len(paths) + (1 if index < limit % len(paths) else 0)
                    if share == 0:
                        continue
                events.extend(events_from_aof(path, limit=share, cipher=cipher))
            return events
        return events_from_aof(self._aof_path, limit=limit, cipher=cipher)

    def rewrite_aof(self, archive_path: str | None = None) -> tuple[int, int]:
        """Compact the engine AOF(s); returns summed ``(old, new)`` sizes.

        With monitoring on the AOF doubles as the G 30 audit trail, so the
        engine refuses to compact without ``archive_path`` — the archival
        path is shard-aware: on the in-process engine the history lands at
        ``archive_path`` itself, on a sharded deployment each worker
        archives its own trail at ``<archive_path>.shard<i>`` (readable
        with the same :func:`~repro.gdpr.audit.events_from_aof` tooling as
        the live per-shard files).
        """
        return self.engine.rewrite_aof(archive_path)

    def audit_archive_paths(self, archive_path: str) -> list[str]:
        """Where :meth:`rewrite_aof` lands the audit history for this
        deployment: the path itself in-process, one ``.shard<i>`` file
        per worker when sharded."""
        if isinstance(self.engine, ShardedMiniKV):
            return [shard_aof_path(archive_path, index)
                    for index in range(self.engine.shard_count)]
        return [archive_path]

    def _record_exists(self, key: str) -> bool:
        return self.engine.exists(_REC_PREFIX + key)

    # ------------------------------------------------------------------
    # YCSB primitives
    # ------------------------------------------------------------------

    #: GDPR requires every personal datum to expire (G 5(1e)); when the
    #: timely-deletion feature is on, even YCSB rows carry this TTL, which
    #: is what makes the paper's TTL bar cost ~20% on traditional workloads.
    YCSB_TTL_SECONDS = 5 * 86400.0

    def ycsb_insert(self, key: str, fields: dict) -> None:
        self._wire(("insert", key))
        redis_key = _YCSB_PREFIX + key
        self.engine.hmset(redis_key, {f: v.encode() for f, v in fields.items()})
        if self.features.timely_deletion:
            self.engine.expire(redis_key, self.YCSB_TTL_SECONDS)
        with self._ycsb_keys_lock:
            idx = bisect.bisect_left(self._ycsb_keys, key)
            if idx >= len(self._ycsb_keys) or self._ycsb_keys[idx] != key:
                self._ycsb_keys.insert(idx, key)
        self._wire(True)

    def ycsb_read(self, key: str, fields: Sequence[str] | None = None) -> dict | None:
        self._wire(("read", key))
        raw = self.engine.hgetall(_YCSB_PREFIX + key)
        if not raw:
            self._wire(None)
            return None
        out = {f: v.decode() for f, v in raw.items() if fields is None or f in fields}
        self._wire(out)
        return out

    def ycsb_update(self, key: str, fields: dict) -> int:
        self._wire(("update", key))
        if not self.engine.exists(_YCSB_PREFIX + key):
            self._wire(0)
            return 0
        self.engine.hmset(_YCSB_PREFIX + key, {f: v.encode() for f, v in fields.items()})
        self._wire(1)
        return 1

    def ycsb_scan(self, start_key: str, count: int) -> list:
        self._wire(("scan", start_key, count))
        with self._ycsb_keys_lock:
            idx = bisect.bisect_left(self._ycsb_keys, start_key)
            window = self._ycsb_keys[idx:idx + count]
        out = []
        for key in window:
            raw = self.engine.hgetall(_YCSB_PREFIX + key)
            if raw:
                out.append({f: v.decode() for f, v in raw.items()})
        self._wire(len(out))
        return out

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def personal_data_bytes(self) -> int:
        return sum(r.data_bytes() for r in self._iter_records())

    def total_db_bytes(self) -> int:
        return self.engine.memory_used() + self.engine.aof_size()

    def record_count(self) -> int:
        count = 0
        cursor = 0
        while True:
            cursor, keys = self.engine.scan(cursor, match=_REC_PREFIX + "*", count=_SCAN_BATCH)
            count += len(keys)
            if cursor == 0:
                return count

    def close(self) -> None:
        self.engine.close()
        if self._owns_dir:
            shutil.rmtree(self._data_dir, ignore_errors=True)
