"""DB interface layer: the abstract GDPR client every engine stub implements.

GDPRbench's architecture (Figure 2b) puts a storage-interface layer between
the workload executor and the database: one client stub per system that
translates generic operations into engine APIs.  This module defines that
generic operation surface:

* the 21 GDPR queries of Section 3.3 (each takes the issuing
  :class:`~repro.gdpr.acl.Principal`, because the paper enforces
  metadata-based access control in the client);
* the 5 YCSB primitives (read/update/insert/scan/read-modify-write) used
  for the traditional-workload baselines;
* the space-accounting hooks behind the Table 3 metric.

Feature switches are uniform across engines via :class:`FeatureSet`, so a
benchmark can say "encryption + logging" without knowing which engine it
drives.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import GDPRError
from repro.gdpr.acl import AccessController, Principal
from repro.gdpr.compliance import ComplianceReport, evaluate_features
from repro.gdpr.record import PersonalRecord, parse_ttl

from .futures import AutoPipe, ResultFuture, passthrough

#: Scalar vs list-valued metadata attributes (wire names).
LIST_ATTRIBUTES = ("PUR", "OBJ", "DEC", "SHR")
SCALAR_ATTRIBUTES = ("TTL", "USR", "SRC")


@dataclass
class FeatureSet:
    """Which GDPR retrofits are active on a deployment (Section 5)."""

    encryption: bool = False        # LUKS at rest + TLS in transit
    timely_deletion: bool = False   # strict TTL (minikv) / sweeper (minisql)
    monitoring: bool = False        # audit logging incl. reads
    access_control: bool = True     # client-side metadata ACL
    metadata_indexing: bool = False # secondary indices (minisql only)

    @classmethod
    def none(cls) -> "FeatureSet":
        """Baseline: no GDPR features (the paper's stock configurations)."""
        return cls(access_control=False)

    @classmethod
    def full(cls, metadata_indexing: bool = False) -> "FeatureSet":
        """All features on — the 'Combined' bars of Figure 4."""
        return cls(
            encryption=True,
            timely_deletion=True,
            monitoring=True,
            access_control=True,
            metadata_indexing=metadata_indexing,
        )

    def as_dict(self) -> dict:
        return {
            "encryption": self.encryption,
            "timely_deletion": self.timely_deletion,
            "monitoring": self.monitoring,
            "access_control": self.access_control,
            "metadata_indexing": self.metadata_indexing,
        }


def normalise_attribute(attribute: str, value):
    """Canonicalise an UPDATE-METADATA value for its attribute.

    List attributes take a tuple of strings (a single string becomes a
    one-element tuple); TTL takes seconds (or a ``365days`` string);
    USR/SRC take a plain string.
    """
    attribute = attribute.upper()
    if attribute in LIST_ATTRIBUTES:
        if isinstance(value, str):
            value = (value,) if value else ()
        return tuple(value)
    if attribute == "TTL":
        if isinstance(value, str):
            return parse_ttl(value)
        return float(value)
    if attribute in SCALAR_ATTRIBUTES:
        if not isinstance(value, str):
            raise GDPRError(f"{attribute} expects a string, got {value!r}")
        return value
    raise GDPRError(f"unknown metadata attribute {attribute!r}")


#: pipeline op kinds that only read (batch lock planning / snapshot reads)
PIPELINE_READ_KINDS = frozenset({
    "read",
    "read-data-by-key", "read-data-by-pur", "read-data-by-usr",
    "read-data-by-obj", "read-data-by-dec",
    "read-metadata-by-key", "read-metadata-by-usr",
})

#: pipeline op kinds that mutate state
PIPELINE_WRITE_KINDS = frozenset({
    "update", "insert",
    "delete-record-by-ttl",
    "update-metadata-by-key", "update-metadata-by-pur",
    "update-metadata-by-usr", "update-metadata-by-shr",
})


class GDPRPipeline(ABC):
    """Engine-agnostic client command batch (the pipeline contract).

    GDPRbench's storage-interface layer gains one batching abstraction
    shared by every engine stub: queueing methods mirror the client
    primitives but only enqueue, each returning a
    :class:`~repro.clients.futures.ResultFuture` that resolves when the
    batch executes, and :meth:`execute` runs the whole batch as **one
    engine round-trip** — one serialised request and one serialised
    response crossing the (possibly TLS) wire, one engine-side lock
    scope, and one persistence group commit.  Responses come back in
    queue order, shaped exactly as the unbatched primitive would have
    returned them; each queued operation's future resolves to its own
    slot (or carries its slot's captured error), and ``.then()``
    callbacks fire in slot order after the batch completes.

    :meth:`pipeline` opens a **nested pipeline** that auto-merges into
    this one: code handed a nested view queues onto the shared root
    queue, its ``execute()`` costs nothing, and the single root
    ``execute()`` is the one wire round-trip that resolves every
    future — composable batching without composing round-trips.

    The batchable surface covers the YCSB primitives *and* the hot GDPR
    queries: the ``read-data-by-*`` family, ``read-metadata-by-key/usr``,
    ``delete-record-by-ttl``, and the ``update-metadata-by-*`` group —
    the operations the four GDPRbench workloads issue in bulk.  GDPR
    queueing methods carry the issuing principal, exactly like their
    single-shot counterparts, and access control is still checked per
    operation at execute time.

    Error semantics follow Redis pipelining: a failing command does not
    stop the batch — every queued command executes, failures are captured
    per slot (on the slot's future), and ``execute()`` raises the first
    captured error after the batch completes.  The queue is always
    drained by ``execute()``, even on failure, so a pipeline object is
    reusable.

    The queueing half is concrete — every engine batches the same
    ``(kind, key, payload)`` triples — so a stub only implements
    :meth:`_run_ops`; draining, future resolution, and the
    first-error-raise live here in the template :meth:`execute`.

    **Implementor contract.**  Every ``_run_ops()`` implementation
    receives the already-drained batch and must uphold, in order:

    1. *One round-trip.*  The whole batch crosses the client<->engine
       boundary as one serialised request and one serialised response
       (per shard, for sharded engines) — never one exchange per
       operation.  Point operations should additionally coalesce into
       the engine's native batching (engine pipelines / one
       transaction), amortising lock scopes and persistence flushes.
    2. *Flush points around multi-record ops.*  An operation that
       cannot join the engine-native batch (a SCAN-shaped query, a
       purge) must first flush the pending point-op run so that
       operations observe each other in queue order.
    3. *Slot-shaped responses.*  Return ``(responses, errors)``:
       one response per queued operation, in queue order, shaped
       exactly as the unbatched client primitive would have returned
       it.
    4. *Per-slot error capture.*  A failing operation — including an
       access-control denial — fills its own slot with the exception
       instance (and appends it to ``errors``) and never stops the
       rest of the batch; ``_run_ops`` itself raises only on
       batch-level failure (transport loss), never for one bad slot.
       Access control is checked per operation at execute time with
       the principal queued alongside the operation.
    5. *Isolation is engine-scoped, and documented.*  Whatever
       atomicity the engine batch provides (all involved stripes locked;
       one transaction; per-shard only) is the batch's isolation — the
       contract does not add cross-batch or cross-shard guarantees, so
       each implementation documents what its engine gives.
    """

    def __init__(self, parent: "GDPRPipeline | None" = None) -> None:
        self._parent = parent
        self._root: GDPRPipeline = parent._root if parent is not None else self
        #: queued (kind, key, payload) triples — root pipeline only
        self._ops: list[tuple[str, str, object]] = []
        #: the pending future for each queued triple — root only, in step
        self._futures: list[ResultFuture] = []
        #: futures queued through THIS view (what a nested execute returns)
        self._issued: list[ResultFuture] = []

    def __len__(self) -> int:
        """Commands currently queued (through this view, when nested)."""
        if self._root is self:
            return len(self._ops)
        return sum(1 for future in self._issued if future.pending)

    def pipeline(self) -> "GDPRPipeline":
        """A nested pipeline that auto-merges into this one.

        The nested view queues onto the shared root queue; its
        ``execute()`` performs **no** round-trip (it just hands back the
        futures issued through the view) — the root's ``execute()`` is
        the single wire exchange that resolves everything queued through
        any view of the batch.
        """
        return type(self)(self._client, parent=self)

    def _append(self, kind: str, key: str, payload) -> ResultFuture:
        """Queue one triple on the root; returns its pending future."""
        root = self._root
        future = ResultFuture(pipeline=root, flush_hook=root._resolve)
        root._ops.append((kind, key, payload))
        root._futures.append(future)
        if root is not self:
            self._issued.append(future)
        return future

    # -- YCSB primitives ----------------------------------------------------

    def ycsb_read(self, key: str, fields: Sequence[str] | None = None) -> ResultFuture:
        """Queue a point read; its slot resolves to a dict or None."""
        return self._append("read", key, fields)

    def ycsb_update(self, key: str, fields: dict) -> ResultFuture:
        """Queue an update; its slot resolves to the changed-row count."""
        return self._append("update", key, fields)

    def ycsb_insert(self, key: str, fields: dict) -> ResultFuture:
        """Queue an insert; its slot resolves to None."""
        return self._append("insert", key, fields)

    # -- GDPR reads ---------------------------------------------------------

    def read_data_by_key(self, principal, key: str) -> ResultFuture:
        """Queue READ-DATA-BY-KEY; its slot is the datum string or None."""
        return self._append("read-data-by-key", key, principal)

    def read_data_by_pur(self, principal, purpose: str) -> ResultFuture:
        """Queue READ-DATA-BY-PUR; its slot is a [(key, data)] list."""
        return self._append("read-data-by-pur", purpose, principal)

    def read_data_by_usr(self, principal, user: str) -> ResultFuture:
        """Queue READ-DATA-BY-USR; its slot is a [(key, data)] list."""
        return self._append("read-data-by-usr", user, principal)

    def read_data_by_obj(self, principal, purpose: str) -> ResultFuture:
        """Queue READ-DATA-BY-OBJ; its slot is a [(key, data)] list."""
        return self._append("read-data-by-obj", purpose, principal)

    def read_data_by_dec(self, principal, decision: str) -> ResultFuture:
        """Queue READ-DATA-BY-DEC; its slot is a [(key, data)] list."""
        return self._append("read-data-by-dec", decision, principal)

    def read_metadata_by_key(self, principal, key: str) -> ResultFuture:
        """Queue READ-METADATA-BY-KEY; its slot is a metadata dict or None."""
        return self._append("read-metadata-by-key", key, principal)

    def read_metadata_by_usr(self, principal, user: str) -> ResultFuture:
        """Queue READ-METADATA-BY-USR; its slot is a [(key, metadata)] list."""
        return self._append("read-metadata-by-usr", user, principal)

    # -- GDPR writes --------------------------------------------------------

    def delete_record_by_ttl(self, principal) -> ResultFuture:
        """Queue DELETE-RECORD-BY-TTL; its slot is the erased-record count."""
        return self._append("delete-record-by-ttl", "", principal)

    def update_metadata_by_key(self, principal, key: str, attribute: str, value) -> ResultFuture:
        """Queue UPDATE-METADATA-BY-KEY; its slot is the changed-row count."""
        return self._append("update-metadata-by-key", key, (principal, attribute, value))

    def update_metadata_by_pur(self, principal, purpose: str, attribute: str, value) -> ResultFuture:
        """Queue UPDATE-METADATA-BY-PUR; its slot is the changed-row count."""
        return self._append("update-metadata-by-pur", purpose, (principal, attribute, value))

    def update_metadata_by_usr(self, principal, user: str, attribute: str, value) -> ResultFuture:
        """Queue UPDATE-METADATA-BY-USR; its slot is the changed-row count."""
        return self._append("update-metadata-by-usr", user, (principal, attribute, value))

    def update_metadata_by_shr(self, principal, third_party: str, attribute: str, value) -> ResultFuture:
        """Queue UPDATE-METADATA-BY-SHR; its slot is the changed-row count."""
        return self._append("update-metadata-by-shr", third_party, (principal, attribute, value))

    def _withdraw(self, future: ResultFuture) -> bool:
        """Remove a still-pending future's slot from the queue (root only);
        the cancellation hook behind :meth:`ResultFuture.cancel`."""
        try:
            index = self._futures.index(future)
        except ValueError:
            return False
        del self._futures[index]
        del self._ops[index]
        return True

    def _resolve(self) -> None:
        """Flush hook handed to every future: run the batch, leaving
        failures per-slot (reading a future raises only its own error)."""
        self._flush(raise_errors=False)

    def execute(self) -> list:
        """Run the batch in one round-trip; responses in queue order.

        On a nested view this performs no round-trip: it returns the
        futures issued through the view, which resolve when the root
        executes.  On the root it returns the raw responses (and raises
        the first per-slot error after the batch completes), exactly as
        the explicit-batch contract always has.
        """
        if self._root is not self:
            issued, self._issued = self._issued, []
            return issued
        return self._flush(raise_errors=True)

    def _flush(self, raise_errors: bool) -> list:
        """Drain + run the batch, settle every future, fire callbacks."""
        ops, self._ops = self._ops, []
        futures, self._futures = self._futures, []
        if not ops:
            return []
        try:
            with passthrough():
                responses, errors = self._run_ops(ops)
        except BaseException as exc:
            # A batch-level failure (transport loss, engine shutdown)
            # fails every slot: futures never stay pending after a flush.
            for future in futures:
                future._settle(exc)
            for future in futures:
                future._fire_callbacks()
            raise
        for future, response in zip(futures, responses):
            future._settle(response)
        for future in futures:  # slot order, after the whole batch settled
            future._fire_callbacks()
        if raise_errors and errors:
            raise errors[0]
        return responses

    @abstractmethod
    def _run_ops(self, ops: list[tuple[str, str, object]]) -> tuple[list, list[Exception]]:
        """Run a drained batch in one round-trip (the engine half).

        Returns ``(responses, errors)``: slot-shaped responses in queue
        order — a failing slot holds its exception instance — plus the
        captured errors in occurrence order.  See the class docstring's
        implementor contract.
        """


class GDPRClient(ABC):
    """Abstract client: GDPR queries + YCSB primitives against one engine."""

    #: human-readable engine name ('redis' / 'postgres' analogues)
    engine_name = "abstract"

    #: Operation names the benchmark runtime may route through
    #: :meth:`pipeline`: the YCSB primitives plus the batchable GDPR
    #: query surface.  Subclasses that implement a pipeline leave this
    #: as is; engines without one set it empty (the runtime then runs
    #: every operation singly).
    PIPELINE_OP_NAMES: frozenset[str] = PIPELINE_READ_KINDS | PIPELINE_WRITE_KINDS

    def __init__(self, features: FeatureSet) -> None:
        self.features = features
        self.acl = AccessController(enabled=features.access_control)
        #: per-thread implicit-pipeline context (see clients/futures.py)
        self._autopipe_local = threading.local()

    def pipeline(self) -> GDPRPipeline | None:
        """A client command batch, or None when the engine has no pipeline.

        Both engine stubs override this; the benchmark runtime falls back
        to single-operation execution when it gets None.
        """
        return None

    def autopipe(self, max_batch: int = 128, flush_on_read: bool = True) -> AutoPipe:
        """An implicit pipeline context for this thread (or asyncio task).

        Inside ``with client.autopipe():``, bare calls on the batchable
        operation surface enqueue onto one shared :meth:`pipeline` and
        return :class:`~repro.clients.futures.ResultFuture` objects; the
        batch flushes on read-of-a-future, at ``max_batch`` queued
        operations, on an event-loop tick, before any non-batchable
        operation, and at context exit — straight-line code rides the
        explicit-batch machinery without hand-building batches.  Results
        are byte-identical to the equivalent explicit batch; with
        ``flush_on_read=False`` reading a future never triggers the
        flush (it waits, for externally-driven flush schedules).
        """
        return AutoPipe(self, max_batch=max_batch, flush_on_read=flush_on_read)

    # ------------------------------------------------------------------
    # Load phase
    # ------------------------------------------------------------------

    @abstractmethod
    def load_records(self, records: Iterable[PersonalRecord]) -> int:
        """Bulk-load the personal-data table (benchmark load phase)."""

    # ------------------------------------------------------------------
    # CREATE / DELETE
    # ------------------------------------------------------------------

    @abstractmethod
    def create_record(self, principal: Principal, record: PersonalRecord) -> bool:
        """CREATE-RECORD (G 24)."""

    @abstractmethod
    def delete_record_by_key(self, principal: Principal, key: str) -> int:
        """DELETE-RECORD-BY-KEY (G 17); returns records erased."""

    @abstractmethod
    def delete_record_by_pur(self, principal: Principal, purpose: str) -> int:
        """DELETE-RECORD-BY-PUR (G 5(1b))."""

    @abstractmethod
    def delete_record_by_ttl(self, principal: Principal) -> int:
        """DELETE-RECORD-BY-TTL (G 5(1e)): purge everything expired."""

    @abstractmethod
    def delete_record_by_usr(self, principal: Principal, user: str) -> int:
        """DELETE-RECORD-BY-USR (G 17)."""

    # ------------------------------------------------------------------
    # READ-DATA
    # ------------------------------------------------------------------

    @abstractmethod
    def read_data_by_key(self, principal: Principal, key: str) -> str | None:
        """READ-DATA-BY-KEY (G 28)."""

    @abstractmethod
    def read_data_by_pur(self, principal: Principal, purpose: str) -> list:
        """READ-DATA-BY-PUR (G 28): [(key, data)] with the purpose."""

    @abstractmethod
    def read_data_by_usr(self, principal: Principal, user: str) -> list:
        """READ-DATA-BY-USR (G 20): a customer's full data export."""

    @abstractmethod
    def read_data_by_obj(self, principal: Principal, purpose: str) -> list:
        """READ-DATA-BY-OBJ (G 21(3)): records NOT objecting to a usage."""

    @abstractmethod
    def read_data_by_dec(self, principal: Principal, decision: str) -> list:
        """READ-DATA-BY-DEC (G 22): records enrolled in a decision use."""

    # ------------------------------------------------------------------
    # READ-METADATA
    # ------------------------------------------------------------------

    @abstractmethod
    def read_metadata_by_key(self, principal: Principal, key: str) -> dict | None:
        """READ-METADATA-BY-KEY (G 15)."""

    @abstractmethod
    def read_metadata_by_usr(self, principal: Principal, user: str) -> list:
        """READ-METADATA-BY-USR (G 15): [(key, metadata dict)]."""

    @abstractmethod
    def read_metadata_by_shr(self, principal: Principal, third_party: str) -> list:
        """READ-METADATA-BY-SHR (G 13(1))."""

    # ------------------------------------------------------------------
    # UPDATE
    # ------------------------------------------------------------------

    @abstractmethod
    def update_data_by_key(self, principal: Principal, key: str, data: str) -> int:
        """UPDATE-DATA-BY-KEY (G 16): rectification."""

    @abstractmethod
    def update_metadata_by_key(self, principal: Principal, key: str, attribute: str, value) -> int:
        """UPDATE-METADATA-BY-KEY (G 18(1), 7(3), 22(3))."""

    @abstractmethod
    def update_metadata_by_pur(self, principal: Principal, purpose: str, attribute: str, value) -> int:
        """UPDATE-METADATA-BY-PUR (G 13(3))."""

    @abstractmethod
    def update_metadata_by_usr(self, principal: Principal, user: str, attribute: str, value) -> int:
        """UPDATE-METADATA-BY-USR (G 13(3))."""

    @abstractmethod
    def update_metadata_by_shr(self, principal: Principal, third_party: str, attribute: str, value) -> int:
        """UPDATE-METADATA-BY-SHR (G 13(3))."""

    # ------------------------------------------------------------------
    # GET-SYSTEM
    # ------------------------------------------------------------------

    @abstractmethod
    def get_system_logs(self, principal: Principal, start: float | None = None,
                        end: float | None = None, limit: int = 100) -> list:
        """GET-SYSTEM-LOGS (G 33, 34)."""

    def get_system_features(self, principal: Principal) -> ComplianceReport:
        """GET-SYSTEM-FEATURES (G 24, 25)."""
        self.acl.check_operation(principal, "get-system-features")
        return evaluate_features(self.features.as_dict())

    def verify_deletion(self, principal: Principal, key: str) -> bool:
        """VERIFY-DELETION: True when no trace of ``key`` remains."""
        self.acl.check_operation(principal, "verify-deletion")
        return self._record_exists(key) is False

    @abstractmethod
    def _record_exists(self, key: str) -> bool:
        """Engine-side existence probe used by verify_deletion."""

    # ------------------------------------------------------------------
    # YCSB primitives (traditional workloads; no GDPR semantics)
    # ------------------------------------------------------------------

    @abstractmethod
    def ycsb_insert(self, key: str, fields: dict) -> None: ...

    @abstractmethod
    def ycsb_read(self, key: str, fields: Sequence[str] | None = None) -> dict | None: ...

    @abstractmethod
    def ycsb_update(self, key: str, fields: dict) -> int: ...

    @abstractmethod
    def ycsb_scan(self, start_key: str, count: int) -> list: ...

    def ycsb_read_modify_write(self, key: str, fields: dict) -> int:
        existing = self.ycsb_read(key)
        if existing is None:
            return 0
        return self.ycsb_update(key, fields)

    # ------------------------------------------------------------------
    # Space accounting (Table 3)
    # ------------------------------------------------------------------

    @abstractmethod
    def personal_data_bytes(self) -> int:
        """Total bytes of personal data proper (Table 3 denominator)."""

    @abstractmethod
    def total_db_bytes(self) -> int:
        """Total database footprint (Table 3 numerator)."""

    @abstractmethod
    def record_count(self) -> int: ...

    def space_overhead(self) -> float:
        """Table 3's space factor: total DB size / personal data size."""
        personal = self.personal_data_bytes()
        if personal == 0:
            return 0.0
        return self.total_db_bytes() / personal

    # ------------------------------------------------------------------

    @abstractmethod
    def close(self) -> None: ...

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
