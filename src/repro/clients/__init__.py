"""DB interface layer: one GDPR client stub per engine (Figure 2b)."""

from .base import FeatureSet, GDPRClient, GDPRPipeline, normalise_attribute
from .futures import AutoPipe, CancelledFutureError, ResultFuture
from .redis_client import RedisClientPipeline, RedisGDPRClient
from .sql_client import SQLClientPipeline, SQLGDPRClient

CLIENTS = {
    "redis": RedisGDPRClient,
    "postgres": SQLGDPRClient,
}


def make_client(engine: str, features: FeatureSet | None = None, **kwargs) -> GDPRClient:
    """Instantiate a client stub by engine name ('redis' or 'postgres')."""
    try:
        cls = CLIENTS[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}; choose from {sorted(CLIENTS)}") from None
    return cls(features=features, **kwargs)


__all__ = [
    "AutoPipe",
    "CancelledFutureError",
    "FeatureSet",
    "ResultFuture",
    "GDPRClient",
    "GDPRPipeline",
    "RedisGDPRClient",
    "RedisClientPipeline",
    "SQLGDPRClient",
    "SQLClientPipeline",
    "make_client",
    "normalise_attribute",
    "CLIENTS",
]
