"""Futures + implicit pipelining for the DB interface layer (redpipe-style).

The explicit :class:`~repro.clients.base.GDPRPipeline` contract batches
whole round-trips, but callers must hand-build the batches.  This module
adds the coalescing layer on top of that contract:

* :class:`ResultFuture` — the value every pipeline queueing method now
  returns.  A future resolves when its batch executes, carries its own
  slot's error (per-slot isolation), runs ``.then()`` callbacks in slot
  order after the batch completes, and — when its pipeline allows it —
  triggers the flush itself the first time someone reads it.
* :class:`AutoPipe` — the *implicit* pipeline: a per-thread context in
  which **bare client calls** on the batchable surface enqueue onto one
  shared pipeline and return futures, so straight-line code coalesces
  into the existing group-commit / scatter-gather machinery without
  hand-built batches.  Flush triggers: read-of-a-future, the size
  threshold, an event-loop tick (when entered on an ``asyncio`` loop
  thread), a non-batchable operation (which must observe queue order),
  and context exit.
* :func:`autopipelined` — the class decorator both engine stubs apply so
  their public operation methods consult the active autopipe.

Nothing here changes what crosses the wire: an autopipe flush calls the
same ``GDPRPipeline`` execute path an explicit batch uses, so results
are byte-identical to the equivalent hand-built batch, and with no
autopipe active every wrapped method is a single ``if`` away from the
paper's one-call-one-round-trip semantics.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Callable

from repro.common.errors import GDPRError

__all__ = [
    "AutoPipe",
    "BATCHABLE_METHODS",
    "CancelledFutureError",
    "ORDERED_METHODS",
    "ResultFuture",
    "autopipelined",
]


class CancelledFutureError(GDPRError):
    """Reading a future whose queued operation was cancelled before flush."""


#: client/pipeline method names that enqueue under an active autopipe —
#: exactly the batchable surface, and the queueing methods share the
#: client methods' names and signatures, so interception is a getattr.
BATCHABLE_METHODS = (
    "ycsb_read", "ycsb_update", "ycsb_insert",
    "read_data_by_key", "read_data_by_pur", "read_data_by_usr",
    "read_data_by_obj", "read_data_by_dec",
    "read_metadata_by_key", "read_metadata_by_usr",
    "delete_record_by_ttl",
    "update_metadata_by_key", "update_metadata_by_pur",
    "update_metadata_by_usr", "update_metadata_by_shr",
)

#: client methods that cannot join a batch but must observe queue order:
#: they flush the pending implicit pipeline, then run directly (inside
#: the passthrough guard, so their internal client calls never re-enter
#: the autopipe — ``ycsb_read_modify_write`` calls ``ycsb_read``).
ORDERED_METHODS = (
    "create_record", "delete_record_by_key", "delete_record_by_pur",
    "delete_record_by_usr", "update_data_by_key", "read_metadata_by_shr",
    "ycsb_scan", "ycsb_read_modify_write", "verify_deletion",
    "get_system_logs", "load_records",
    "personal_data_bytes", "total_db_bytes", "record_count",
    "close",
)


_guard = threading.local()


class passthrough:
    """Thread-local re-entrancy guard: while a pipeline batch executes
    (or an ordered method runs), client calls made *by* that execution
    must hit the engine directly, never re-enqueue onto the autopipe."""

    def __enter__(self):
        _guard.depth = getattr(_guard, "depth", 0) + 1
        return self

    def __exit__(self, *exc) -> None:
        _guard.depth -= 1


def in_passthrough() -> bool:
    return getattr(_guard, "depth", 0) > 0


_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"
_CANCELLED = "cancelled"

#: guards lazy creation of a pending future's wait event.  Futures are
#: settled by the thread that flushes their batch — usually the same
#: thread that queued them — so allocating a ``threading.Event`` per
#: future would tax every pipelined operation (an Event is a Lock plus
#: a Condition) to serve the rare cross-thread wait.  Instead ``result``
#: materialises the event on demand under this lock; ``_settle``
#: publishes the state *before* reading ``_event``, so a waiter that
#: created the event before the read gets woken, and one that lost the
#: race re-checks the already-published state instead of sleeping.
_event_lock = threading.Lock()


class ResultFuture:
    """One queued operation's eventual response slot.

    Lifecycle: *pending* from queueing until its pipeline flushes, then
    *resolved* (value available) or *failed* (that slot's captured
    error); *cancelled* if the caller withdrew the operation before the
    flush.  Resolution happens for every slot of a batch before any
    ``.then`` callback runs, and callbacks fire in slot order — exactly
    the order ``execute()`` returns responses in.

    ``result()`` on a pending future triggers its pipeline's flush when
    a flush hook is attached (explicit pipelines attach their own
    ``execute``-without-raise; autopipes attach their flush unless
    built with ``flush_on_read=False``).  With no hook it waits up to
    ``timeout`` seconds for another thread (or the event-loop tick) to
    flush, then raises :class:`TimeoutError`.

    Awaiting a future (``await fut``) first yields one event-loop tick,
    so sibling coroutines get to enqueue *their* calls before the first
    reader triggers the flush — that tick is what coalesces concurrent
    straight-line tasks into one wire round-trip.
    """

    __slots__ = ("_state", "_value", "_error", "_event", "_callbacks",
                 "_flush_hook", "_pipeline")

    def __init__(self, pipeline=None, flush_hook: Callable | None = None) -> None:
        self._state = _PENDING
        self._value = None
        self._error: BaseException | None = None
        self._event: threading.Event | None = None   # lazy; see _event_lock
        self._callbacks: list[tuple[Callable, Callable | None]] | None = None
        self._flush_hook = flush_hook
        self._pipeline = pipeline  # the root pipeline holding our slot

    # -- state ---------------------------------------------------------

    @property
    def pending(self) -> bool:
        return self._state == _PENDING

    @property
    def resolved(self) -> bool:
        return self._state == _RESOLVED

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def error(self) -> BaseException | None:
        """The captured per-slot failure, or ``None`` unless :attr:`failed`."""
        return self._error if self._state == _FAILED else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultFuture {self._state}>"

    # -- settling (called by the owning pipeline) ----------------------

    def _settle(self, response) -> None:
        """Fill this slot from the executed batch (no callbacks yet)."""
        if isinstance(response, BaseException):
            self._error = response
            state = _FAILED
        else:
            self._value = response
            state = _RESOLVED
        self._pipeline = None  # the slot left the queue; cancel is over
        self._state = state    # publish before the event read below
        event = self._event
        if event is not None:
            event.set()

    def _fire_callbacks(self) -> None:
        """Run queued callbacks, after every slot of the batch settled."""
        callbacks = self._callbacks
        if not callbacks:
            return
        self._callbacks = None
        for on_value, on_error in callbacks:
            self._dispatch(on_value, on_error)

    def _dispatch(self, on_value: Callable, on_error: Callable | None) -> None:
        if self._state == _RESOLVED:
            on_value(self._value)
        elif self._state == _FAILED and on_error is not None:
            on_error(self._error)

    # -- caller surface ------------------------------------------------

    def result(self, timeout: float | None = None):
        """The slot's response; flushes the pipeline if still pending."""
        if self._state == _PENDING and self._flush_hook is not None:
            self._flush_hook()
        if self._state == _PENDING:
            with _event_lock:
                if self._event is None:
                    self._event = threading.Event()
                event = self._event
            if self._state == _PENDING and not event.wait(timeout):
                raise TimeoutError(
                    "unflushed ResultFuture: no flush hook and nothing "
                    f"resolved it within {timeout}s"
                )
        if self._state == _CANCELLED:
            raise CancelledFutureError("operation was cancelled before flush")
        if self._state == _FAILED:
            raise self._error
        return self._value

    def then(self, on_value: Callable, on_error: Callable | None = None) -> "ResultFuture":
        """Run ``on_value(value)`` when this slot resolves (``on_error``
        on its captured exception).  Fires immediately if already
        settled; otherwise fires after the whole batch resolves, in
        slot order."""
        if self._state == _PENDING:
            if self._callbacks is None:
                self._callbacks = []
            self._callbacks.append((on_value, on_error))
        else:
            self._dispatch(on_value, on_error)
        return self

    def cancel(self) -> bool:
        """Withdraw the queued operation before its batch flushes.

        Returns True when the slot was removed from the pending queue
        (``result()`` then raises :class:`CancelledFutureError`); False
        once the batch has started executing or already settled."""
        if self._state != _PENDING or self._pipeline is None:
            return False
        if not self._pipeline._withdraw(self):
            return False
        self._pipeline = None
        self._state = _CANCELLED
        event = self._event
        if event is not None:
            event.set()
        return True

    def __await__(self):
        if self._state == _PENDING and self._flush_hook is not None:
            # one tick of grace: let sibling coroutines enqueue first
            yield from asyncio.sleep(0).__await__()
        return self.result()


# ---------------------------------------------------------------------------
# The implicit pipeline
# ---------------------------------------------------------------------------


class AutoPipe:
    """A per-thread implicit pipeline over one client.

    Entered as a context manager (``with client.autopipe() as ap:``);
    inside, bare calls on the batchable surface enqueue and return
    :class:`ResultFuture` objects.  Flush triggers, in the order they
    usually fire:

    * **size threshold** — the queue reached ``max_batch``;
    * **read of a future** — ``result()`` / ``await`` on any pending
      future of this pipe (disabled with ``flush_on_read=False``);
    * **event-loop tick** — when entered on a running ``asyncio`` loop,
      a flush is scheduled via ``call_soon`` after the first enqueue of
      a batch, so concurrent tasks' calls coalesce into one round-trip;
    * **ordered operation** — a non-batchable client method flushes
      first so it observes queue order;
    * **context exit** — whatever remains flushes; errors stay per-slot
      on their futures (exit never raises a batch error).

    Strictly single-threaded by construction: the context is installed
    thread-locally and the pipeline must only be touched from the
    entering thread.  Nested ``autopipe()`` contexts share the outer
    pipeline (the implicit analogue of nested explicit pipelines
    auto-merging into their root).
    """

    def __init__(self, client, max_batch: int = 128,
                 flush_on_read: bool = True) -> None:
        if max_batch < 1:
            raise GDPRError("autopipe max_batch must be >= 1")
        self._client = client
        self.max_batch = max_batch
        self.flush_on_read = flush_on_read
        self._pipe = None
        self._outer: AutoPipe | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tick_scheduled = False
        #: telemetry: wire round-trips this context triggered
        self.flushes = 0

    # -- context management --------------------------------------------

    def __enter__(self) -> "AutoPipe":
        local = self._client._autopipe_local
        self._outer = getattr(local, "current", None)
        # nested contexts merge into the outer implicit pipeline
        self._pipe = (self._outer._pipe if self._outer is not None
                      else self._client.pipeline())
        if self._pipe is None:
            raise GDPRError(
                f"engine {self._client.engine_name!r} has no pipeline; "
                "autopipe needs one to coalesce into"
            )
        try:
            self._loop = asyncio.get_running_loop()
        except RuntimeError:
            self._loop = None
        local.current = self
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.flush()
        finally:
            self._client._autopipe_local.current = self._outer

    # -- queueing ------------------------------------------------------

    def enqueue(self, name: str, args: tuple, kwargs: dict) -> ResultFuture:
        """Queue one batchable client call; called by the method wrappers."""
        fut = getattr(self._pipe, name)(*args, **kwargs)
        fut._flush_hook = self.flush if self.flush_on_read else None
        if len(self._pipe) >= self.max_batch:
            self.flush()
        elif self._loop is not None and not self._tick_scheduled:
            self._tick_scheduled = True
            self._loop.call_soon(self._tick)
        return fut

    def _tick(self) -> None:
        self._tick_scheduled = False
        self.flush()

    def flush(self) -> None:
        """Execute the pending implicit batch (one wire round-trip).

        Errors are captured per slot on the futures — flush never
        raises a batch error itself, so one poisoned slot cannot break
        an unrelated caller's read of a healthy one.
        """
        if self._pipe is None or len(self._pipe) == 0:
            return
        self._pipe._flush(raise_errors=False)
        self.flushes += 1


def _active_autopipe(client) -> AutoPipe | None:
    if in_passthrough():
        return None
    return getattr(client._autopipe_local, "current", None)


def _wrap_batchable(method):
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        auto = _active_autopipe(self)
        if auto is None:
            return method(self, *args, **kwargs)
        return auto.enqueue(method.__name__, args, kwargs)
    return wrapper


def _wrap_ordered(method):
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        auto = _active_autopipe(self)
        if auto is None:
            return method(self, *args, **kwargs)
        auto.flush()
        with passthrough():
            return method(self, *args, **kwargs)
    return wrapper


def autopipelined(cls):
    """Class decorator arming a client stub's methods for autopipe mode.

    Batchable methods enqueue-and-return-futures when an autopipe is
    active on the calling thread; ordered methods flush the pending
    batch first and then run directly.  With no autopipe active every
    wrapper is a single thread-local check — the paper's per-call
    semantics are untouched.
    """
    for name in BATCHABLE_METHODS:
        setattr(cls, name, _wrap_batchable(getattr(cls, name)))
    for name in ORDERED_METHODS:
        setattr(cls, name, _wrap_ordered(getattr(cls, name)))
    return cls
