"""GDPR client stub for minisql (the PostgreSQL-like engine).

Mirrors how GDPRbench drives PostgreSQL (Section 5.2):

* personal records live in one ``personal_records`` table: key, data and
  the seven metadata attributes as typed columns (multi-valued attributes
  are TEXT_LIST), plus an absolute ``expiry`` timestamp the paper's
  modified INSERTs carry;
* ``metadata_indexing`` creates secondary indices on every metadata
  column (B-tree for scalars, inverted for lists) — the Figure 5c /
  Table 3 "PostgreSQL w/ metadata indices" configuration;
* ``timely_deletion`` attaches the 1-second TTL sweeper daemon;
* ``monitoring`` turns on csvlog statement logging including SELECT
  responses (the row-level-security policy analogue);
* ``encryption`` seals rows at rest and wraps the client<->server hop in
  the simulated SSL channel.

Access control is enforced client-side, as in the paper.

Scaling retrofits (the ROADMAP's production-engine track):

* ``locking`` forwards the engine's concurrency mode — per-table
  reader-writer locks (default) or the seed's single global lock;
* :meth:`SQLGDPRClient.pipeline` implements the shared
  :class:`~repro.clients.base.GDPRPipeline` contract: a YCSB statement
  batch runs inside one engine transaction (one lock acquisition, one WAL
  group commit) and one wire round-trip each way;
* ``durable=True`` + ``wal_batch_size`` arm the write-ahead log and its
  group commit (minikv's ``aof_batch_size`` analogue).
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
from typing import Iterable, Sequence

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ConfigurationError
from repro.crypto.tls import LoopbackSecureLink
from repro.gdpr.acl import Principal
from repro.gdpr.audit import AuditEvent, events_from_csvlog, split_csv_line
from repro.gdpr.record import PersonalRecord
from repro.minisql.csvlog import CSVLogger
from repro.minisql.database import Database, MiniSQLConfig
from repro.minisql.sharded import ShardedDatabase, open_database
from repro.minisql.expr import Cmp, Contains, Expr, Not
from repro.minisql.schema import Column
from repro.minisql.types import FLOAT, TEXT, TEXT_LIST, TIMESTAMP

from .base import (
    PIPELINE_WRITE_KINDS,
    FeatureSet,
    GDPRClient,
    GDPRPipeline,
    normalise_attribute,
)
from .futures import autopipelined

RECORDS_TABLE = "personal_records"
YCSB_TABLE = "usertable"
YCSB_FIELDS = 10

#: metadata column -> index name for the full-indexing configuration
METADATA_INDEX_COLUMNS = ("usr", "pur", "obj", "dec", "shr", "src", "expiry")


#: YCSB pipeline kinds (live in the usertable; GDPR kinds live in
#: personal_records)
_YCSB_KINDS = frozenset({"read", "update", "insert"})


class SQLClientPipeline(GDPRPipeline):
    """minisql implementation of the shared :class:`GDPRPipeline` contract.

    Queued operations — YCSB primitives *and* the batchable GDPR query
    surface (``read-data-by-*``, ``read-metadata-by-key/usr``,
    ``delete-record-by-ttl``, ``update-metadata-by-*``) — execute inside
    **one engine transaction**: one lock-set acquisition over exactly the
    tables the batch touches, one maintenance tick, one WAL group commit,
    and one request + one response crossing the (possibly TLS) wire — the
    SQL analogue of Redis pipelining, built on
    :meth:`repro.minisql.database.Database.transaction`.

    Under ``locking="mvcc"`` a pure-read batch skips the transaction
    machinery entirely: every query runs lock-free against **one MVCC
    snapshot** (:meth:`repro.minisql.database.Database.snapshot_reader`),
    so the whole batch observes one consistent state, pays one statement-
    accounting hop, and never waits on — or delays — a concurrent purge.

    Statement errors follow the Redis pipeline semantics: every queued
    statement runs, failures (including per-operation access-control
    denials) are captured per slot, and the first one is raised after the
    batch commits.
    """

    def __init__(self, client: "SQLGDPRClient", parent=None) -> None:
        super().__init__(parent)
        self._client = client

    def _issue_ycsb(self, target, kind: str, key: str, payload):
        """Issue one YCSB point op's statement against ``target``.

        ``target`` is anything with the shared statement surface — a
        transaction / snapshot reader (executes immediately) or a
        :class:`~repro.minisql.sharded.ShardedSQLPipeline` (queues) —
        so the in-process and scatter/gather paths cannot drift in how
        they build the statements (projection, key predicate, TTL
        expiry stamping).
        """
        client = self._client
        if kind == "read":
            return target.select_point(
                YCSB_TABLE, "key", key,
                columns=list(payload) if payload is not None else None,
            )
        if kind == "update":
            return target.update(YCSB_TABLE, payload, Cmp("key", "=", key))
        row = {"key": key, **payload}  # insert
        if client.features.timely_deletion:
            row["expiry"] = client.clock.now() + client.YCSB_TTL_SECONDS
        return target.insert(YCSB_TABLE, row)

    @staticmethod
    def _shape_ycsb(kind: str, result):
        """An executed YCSB statement's raw result -> the op's response."""
        if kind == "read":
            return result[0] if result else None
        if kind == "update":
            return result
        return None  # insert

    def _run_op(self, runner, kind: str, key: str, payload):
        """One queued operation against ``runner`` (txn or snapshot reader)."""
        client = self._client
        if kind in _YCSB_KINDS:
            return self._shape_ycsb(kind, self._issue_ycsb(runner, kind, key, payload))
        if kind == "delete-record-by-ttl":
            return client._do_delete_record_by_ttl(runner, payload)
        if kind.startswith("update-metadata-by-"):
            principal, attribute, value = payload
            return client._do_update_metadata(
                runner, kind, principal, key, attribute, value
            )
        # the read-data-by-* / read-metadata-by-* family
        return client._do_gdpr_read(runner, kind, payload, key)

    def _run_ops(self, ops) -> tuple[list, list[Exception]]:
        client = self._client
        kinds = {kind for kind, _, _ in ops}
        if kinds & _YCSB_KINDS:
            client._ensure_ycsb_table()
        # One request round-trip carries the whole batch.
        client._wire([(kind, key) for kind, key, _ in ops])
        if isinstance(client.db, ShardedDatabase):
            responses, errors = self._drain_sharded(ops)
        else:
            responses, errors = self._drain_transactional(ops, kinds)
        # ...and one response round-trip carries every result back.
        client._wire(responses)
        return responses, errors

    def _drain_transactional(self, ops, kinds) -> tuple[list, list[Exception]]:
        """In-process engine: the whole batch inside one transaction (or,
        for a pure-read batch under MVCC, one lock-free snapshot)."""
        client = self._client
        read_tables: set[str] = set()
        write_tables: set[str] = set()
        for kind in kinds:
            table = YCSB_TABLE if kind in _YCSB_KINDS else RECORDS_TABLE
            if kind in PIPELINE_WRITE_KINDS:
                write_tables.add(table)
            else:
                read_tables.add(table)
        responses: list = []
        errors: list[Exception] = []

        def drain(runner) -> None:
            for kind, key, payload in ops:
                try:
                    responses.append(self._run_op(runner, kind, key, payload))
                except Exception as exc:  # captured per slot, batch continues
                    responses.append(exc)
                    errors.append(exc)

        if not write_tables and client.db.config.locking == "mvcc":
            # Lock-free fast path: one snapshot for the whole read batch.
            with client.db.snapshot_reader(statements=len(ops)) as reader:
                drain(reader)
        else:
            with client.db.transaction(
                read=read_tables - write_tables, write=write_tables
            ) as txn:
                drain(txn)
        return responses, errors

    def _drain_sharded(self, ops) -> tuple[list, list[Exception]]:
        """Sharded engine: scatter/gather sub-batches, one txn per shard.

        Runs of YCSB point operations queue onto a
        :class:`~repro.minisql.sharded.ShardedSQLPipeline`: the run splits
        into one statement sub-batch per involved shard, each sub-batch
        executes **inside one transaction on its worker** (per-shard
        transactional atomicity — the sharded analogue of the one-engine-
        transaction batch), and the workers run in parallel under their
        own GILs.  Multi-record GDPR operations flush the pending run and
        execute against the front facade, whose statements fan out
        internally; there is no cross-shard barrier between sub-batches
        (docs/sharding.md).
        """
        client = self._client
        responses: list = [None] * len(ops)
        errors: list[Exception] = []
        buffered: list = []  # (slot, kind, key, payload) point-op run
        for slot, (kind, key, payload) in enumerate(ops):
            if kind in _YCSB_KINDS:
                buffered.append((slot, kind, key, payload))
                continue
            self._flush_sharded(buffered, responses, errors)
            try:
                responses[slot] = self._run_op(client.db, kind, key, payload)
            except Exception as exc:
                responses[slot] = exc
                errors.append(exc)
        self._flush_sharded(buffered, responses, errors)
        return responses, errors

    def _flush_sharded(self, buffered: list, responses: list,
                       errors: list[Exception]) -> None:
        """Run buffered point ops as one scatter/gather statement batch."""
        if not buffered:
            return
        pipe = self._client.db.pipeline()
        for _slot, kind, key, payload in buffered:
            self._issue_ycsb(pipe, kind, key, payload)
        raw = pipe.execute(raise_on_error=False)
        for (slot, kind, _key, _payload), result in zip(buffered, raw):
            if isinstance(result, Exception):
                responses[slot] = result
                errors.append(result)
            else:
                responses[slot] = self._shape_ycsb(kind, result)
        buffered.clear()


@autopipelined
class SQLGDPRClient(GDPRClient):
    """DB-interface stub translating GDPR queries into minisql statements."""

    engine_name = "postgres"

    def __init__(
        self,
        features: FeatureSet | None = None,
        data_dir: str | None = None,
        clock: Clock | None = None,
        locking: str = "table-rw",
        wal_batch_size: int = 1,
        durable: bool = False,
        shards: int = 1,
        transport: str = "pipe",
        shard_addresses: tuple | None = None,
        ring_vnodes: int | None = None,
    ) -> None:
        super().__init__(features or FeatureSet.none())
        self.clock = clock or SystemClock()
        self._owns_dir = data_dir is None
        self._data_dir = data_dir or tempfile.mkdtemp(prefix="repro-minisql-")
        csvlog_path = None
        if self.features.monitoring:
            csvlog_path = os.path.join(self._data_dir, "postgresql.csv")
        wal_path = os.path.join(self._data_dir, "pg_wal.bin") if durable else None
        # shards=1 -> the paper's in-process facade on the client clock
        # (byte-identical to the seed construction path); shards>1 -> the
        # multi-process router of docs/sharding.md, whose statement
        # surface is identical, so everything below routes transparently.
        # The factory rejects a custom clock when sharded (workers keep
        # their own system clocks), so the sharded branch forwards the
        # caller's clock argument, not the resolved default.
        self.db: Database | ShardedDatabase = open_database(
            MiniSQLConfig(
                encryption_at_rest=self.features.encryption,
                wal_path=wal_path,
                csvlog_path=csvlog_path,
                log_statements=self.features.monitoring,
                locking=locking,
                wal_batch_size=wal_batch_size,
                shards=shards,
                transport=transport,
                shard_addresses=shard_addresses,
                ring_vnodes=ring_vnodes,
            ),
            clock=self.clock if shards <= 1 else clock,
        )
        #: front-side readers over the per-shard audit logs (the workers
        #: write them; get_system_logs parses them with the shared cipher)
        self._shard_csvlogs: list[CSVLogger] = []
        if isinstance(self.db, ShardedDatabase) and self.features.monitoring:
            self._shard_csvlogs = [
                CSVLogger(
                    path,
                    log_reads=self.features.monitoring,
                    clock=self.clock,
                    cipher=self.db._file_cipher,
                )
                for path in self.db.csvlog_paths
            ]
        self._link = LoopbackSecureLink(enabled=self.features.encryption)
        self._create_records_table()
        self._ycsb_ready = False
        self._ycsb_ddl_lock = threading.Lock()

    def pipeline(self) -> SQLClientPipeline:
        """A client command batch (one engine transaction + one wire trip)."""
        return SQLClientPipeline(self)

    def _create_records_table(self) -> None:
        if RECORDS_TABLE in self.db.catalog.tables():
            # Recovered from a durable WAL: the schema replayed already.
            # Indices the WAL lacks (store written without metadata_indexing)
            # are built from the heap now; the sweeper is in-memory state
            # and always needs re-attaching.
            if self.features.metadata_indexing:
                existing = {
                    info.name for info in self.db.catalog.indices_for(RECORDS_TABLE)
                }
                for column in METADATA_INDEX_COLUMNS:
                    if f"idx_{column}" not in existing:
                        self.db.create_index(f"idx_{column}", RECORDS_TABLE, column)
            if self.features.timely_deletion:
                self.db.enable_ttl(RECORDS_TABLE, "expiry")
            return
        self.db.create_table(
            RECORDS_TABLE,
            [
                Column("key", TEXT, nullable=False),
                Column("data", TEXT, nullable=False),
                Column("pur", TEXT_LIST),
                Column("ttl", FLOAT),
                Column("usr", TEXT),
                Column("obj", TEXT_LIST),
                Column("dec", TEXT_LIST),
                Column("shr", TEXT_LIST),
                Column("src", TEXT),
                Column("expiry", TIMESTAMP),
            ],
            primary_key="key",
        )
        if self.features.metadata_indexing:
            for column in METADATA_INDEX_COLUMNS:
                self.db.create_index(f"idx_{column}", RECORDS_TABLE, column)
        if self.features.timely_deletion:
            self.db.enable_ttl(RECORDS_TABLE, "expiry")

    # ------------------------------------------------------------------
    # Wire helper (the SSL boundary)
    # ------------------------------------------------------------------

    def _wire(self, payload) -> None:
        """Client<->server boundary: always serialise (the wire protocol),
        cipher only when the encryption feature is on (the SSL layer)."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self._link.enabled:
            self._link.to_server(blob)

    # ------------------------------------------------------------------
    # Record <-> row translation
    # ------------------------------------------------------------------

    def _row_from_record(self, record: PersonalRecord) -> dict:
        return {
            "key": record.key,
            "data": record.data,
            "pur": record.purposes,
            "ttl": record.ttl_seconds,
            "usr": record.user,
            "obj": record.objections,
            "dec": record.decisions,
            "shr": record.shared_with,
            "src": record.source,
            "expiry": self.clock.now() + record.ttl_seconds,
        }

    @staticmethod
    def _record_from_row(row: dict) -> PersonalRecord:
        return PersonalRecord(
            key=row["key"],
            data=row["data"],
            purposes=tuple(row["pur"] or ()),
            ttl_seconds=row["ttl"] or 0.0,
            user=row["usr"] or "",
            objections=tuple(row["obj"] or ()),
            decisions=tuple(row["dec"] or ()),
            shared_with=tuple(row["shr"] or ()),
            source=row["src"] or "",
        )

    # ------------------------------------------------------------------
    # Load phase
    # ------------------------------------------------------------------

    def load_records(self, records: Iterable[PersonalRecord]) -> int:
        loaded = 0
        for record in records:
            self.db.insert(RECORDS_TABLE, self._row_from_record(record))
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # CREATE / DELETE
    # ------------------------------------------------------------------

    def create_record(self, principal: Principal, record: PersonalRecord) -> bool:
        self.acl.check_operation(principal, "create-record")
        self._wire(("create-record", record.key))
        self.db.insert(RECORDS_TABLE, self._row_from_record(record))
        self._wire(True)
        return True

    def delete_record_by_key(self, principal: Principal, key: str) -> int:
        self.acl.check_operation(principal, "delete-record-by-key")
        self._wire(("delete-record-by-key", key))
        rows = self.db.select(RECORDS_TABLE, Cmp("key", "=", key))
        if not rows:
            self._wire(0)
            return 0
        self.acl.check_record_access(principal, self._record_from_row(rows[0]), write=True)
        deleted = self.db.delete(RECORDS_TABLE, Cmp("key", "=", key))
        self._wire(deleted)
        return deleted

    def delete_record_by_pur(self, principal: Principal, purpose: str) -> int:
        self.acl.check_operation(principal, "delete-record-by-pur")
        self._wire(("delete-record-by-pur", purpose))
        deleted = self.db.delete(RECORDS_TABLE, Contains("pur", purpose))
        self._wire(deleted)
        return deleted

    def _do_delete_record_by_ttl(self, runner, principal: Principal) -> int:
        """DELETE-RECORD-BY-TTL core against any statement runner."""
        self.acl.check_operation(principal, "delete-record-by-ttl")
        return runner.delete(RECORDS_TABLE, Cmp("expiry", "<=", self.clock.now()))

    def delete_record_by_ttl(self, principal: Principal) -> int:
        self._wire(("delete-record-by-ttl",))
        deleted = self._do_delete_record_by_ttl(self.db, principal)
        self._wire(deleted)
        return deleted

    def delete_record_by_usr(self, principal: Principal, user: str) -> int:
        self.acl.check_operation(principal, "delete-record-by-usr")
        self._wire(("delete-record-by-usr", user))
        deleted = self.db.delete(RECORDS_TABLE, Cmp("usr", "=", user))
        self._wire(deleted)
        return deleted

    # ------------------------------------------------------------------
    # READ-DATA
    # ------------------------------------------------------------------

    #: metadata-conditioned read -> its WHERE tree (shared by the single-op
    #: wrappers and the pipelined batch path)
    _GDPR_READ_WHERE = {
        "read-data-by-pur": lambda arg: Contains("pur", arg),
        "read-data-by-usr": lambda arg: Cmp("usr", "=", arg),
        "read-data-by-obj": lambda arg: Not(Contains("obj", arg)),
        "read-data-by-dec": lambda arg: Contains("dec", arg),
        "read-metadata-by-usr": lambda arg: Cmp("usr", "=", arg),
        "read-metadata-by-shr": lambda arg: Contains("shr", arg),
    }

    def _do_gdpr_read(self, runner, op: str, principal: Principal, arg: str):
        """One GDPR read query against any statement runner.

        ``runner`` is anything with the shared statement surface — the
        :class:`~repro.minisql.database.Database` facade (single-op path),
        an open :class:`~repro.minisql.transaction.Transaction`, or a
        lock-free :class:`~repro.minisql.database.SnapshotReader` (the
        MVCC batch path).  Access control is checked per operation and
        per record, exactly as the single-op methods always have.
        """
        self.acl.check_operation(principal, op)
        if op in ("read-data-by-key", "read-metadata-by-key"):
            rows = runner.select(RECORDS_TABLE, Cmp("key", "=", arg))
            if not rows:
                return None
            record = self._record_from_row(rows[0])
            if op == "read-data-by-key":
                self.acl.check_record_access(principal, record)
                return record.data
            self.acl.check_metadata_access(principal, record)
            return record.metadata()
        where = self._GDPR_READ_WHERE[op](arg)
        metadata = op.startswith("read-metadata")
        out = []
        for row in runner.select(RECORDS_TABLE, where):
            record = self._record_from_row(row)
            if metadata:
                self.acl.check_metadata_access(principal, record)
                out.append((record.key, record.metadata()))
            else:
                self.acl.check_record_access(principal, record)
                out.append((record.key, record.data))
        return out

    def _gdpr_read(self, op: str, principal: Principal, arg: str):
        """Single-op wrapper: wire the request, run the core, wire the reply."""
        self._wire((op, arg) if arg else (op,))
        result = self._do_gdpr_read(self.db, op, principal, arg)
        self._wire(result)
        return result

    def read_data_by_key(self, principal: Principal, key: str) -> str | None:
        return self._gdpr_read("read-data-by-key", principal, key)

    def read_data_by_pur(self, principal: Principal, purpose: str) -> list:
        return self._gdpr_read("read-data-by-pur", principal, purpose)

    def read_data_by_usr(self, principal: Principal, user: str) -> list:
        return self._gdpr_read("read-data-by-usr", principal, user)

    def read_data_by_obj(self, principal: Principal, purpose: str) -> list:
        return self._gdpr_read("read-data-by-obj", principal, purpose)

    def read_data_by_dec(self, principal: Principal, decision: str) -> list:
        return self._gdpr_read("read-data-by-dec", principal, decision)

    # ------------------------------------------------------------------
    # READ-METADATA
    # ------------------------------------------------------------------

    def read_metadata_by_key(self, principal: Principal, key: str) -> dict | None:
        return self._gdpr_read("read-metadata-by-key", principal, key)

    def read_metadata_by_usr(self, principal: Principal, user: str) -> list:
        return self._gdpr_read("read-metadata-by-usr", principal, user)

    def read_metadata_by_shr(self, principal: Principal, third_party: str) -> list:
        return self._gdpr_read("read-metadata-by-shr", principal, third_party)

    # ------------------------------------------------------------------
    # UPDATE
    # ------------------------------------------------------------------

    def update_data_by_key(self, principal: Principal, key: str, data: str) -> int:
        self.acl.check_operation(principal, "update-data-by-key")
        self._wire(("update-data-by-key", key))
        rows = self.db.select(RECORDS_TABLE, Cmp("key", "=", key))
        if not rows:
            self._wire(0)
            return 0
        self.acl.check_record_access(principal, self._record_from_row(rows[0]), write=True)
        changed = self.db.update(RECORDS_TABLE, {"data": data}, Cmp("key", "=", key))
        self._wire(changed)
        return changed

    def _assignments_for(self, attribute: str, value) -> dict:
        attribute = attribute.upper()
        canonical = normalise_attribute(attribute, value)
        if attribute == "TTL":
            return {"ttl": canonical, "expiry": self.clock.now() + canonical}
        return {attribute.lower(): canonical}

    #: group metadata update -> its WHERE tree (shared with the batch path)
    _GDPR_UPDATE_WHERE = {
        "update-metadata-by-pur": lambda arg: Contains("pur", arg),
        "update-metadata-by-usr": lambda arg: Cmp("usr", "=", arg),
        "update-metadata-by-shr": lambda arg: Contains("shr", arg),
    }

    def _do_update_metadata(self, runner, op: str, principal: Principal,
                            arg: str, attribute: str, value) -> int:
        """One UPDATE-METADATA query against any writable statement runner."""
        self.acl.check_operation(principal, op)
        if op == "update-metadata-by-key":
            rows = runner.select(RECORDS_TABLE, Cmp("key", "=", arg))
            if not rows:
                return 0
            self.acl.check_metadata_access(principal, self._record_from_row(rows[0]))
            where: Expr = Cmp("key", "=", arg)
        else:
            where = self._GDPR_UPDATE_WHERE[op](arg)
        return runner.update(RECORDS_TABLE, self._assignments_for(attribute, value), where)

    def _update_metadata(self, op: str, principal: Principal, arg: str,
                         attribute: str, value) -> int:
        self._wire((op, arg, attribute))
        changed = self._do_update_metadata(self.db, op, principal, arg, attribute, value)
        self._wire(changed)
        return changed

    def update_metadata_by_key(self, principal: Principal, key: str, attribute: str, value) -> int:
        return self._update_metadata("update-metadata-by-key", principal, key, attribute, value)

    def update_metadata_by_pur(self, principal: Principal, purpose: str, attribute: str, value) -> int:
        return self._update_metadata("update-metadata-by-pur", principal, purpose, attribute, value)

    def update_metadata_by_usr(self, principal: Principal, user: str, attribute: str, value) -> int:
        return self._update_metadata("update-metadata-by-usr", principal, user, attribute, value)

    def update_metadata_by_shr(self, principal: Principal, third_party: str, attribute: str, value) -> int:
        return self._update_metadata("update-metadata-by-shr", principal, third_party, attribute, value)

    # ------------------------------------------------------------------
    # GET-SYSTEM
    # ------------------------------------------------------------------

    @staticmethod
    def _events_from_lines(lines: list[str]) -> list[AuditEvent]:
        events = []
        for line in lines:
            parts = split_csv_line(line)
            if len(parts) != 5:
                continue
            try:
                events.append(
                    AuditEvent(
                        timestamp=float(parts[0]),
                        operation=parts[1],
                        target=parts[2],
                        detail=parts[3],
                        rows=int(parts[4]),
                    )
                )
            except ValueError:
                continue
        return events

    def get_system_logs(self, principal: Principal, start: float | None = None,
                        end: float | None = None, limit: int = 100) -> list[AuditEvent]:
        self.acl.check_operation(principal, "get-system-logs")
        if isinstance(self.db, ShardedDatabase):
            if not self._shard_csvlogs:
                return []
            # The audit trail is per-shard (one csvlog per worker); flush
            # every worker's buffer, then read front-side.
            self.db.flush_csvlog()
            if start is None and end is None:
                # Fast path: recent-activity probe.  Split the limit
                # exactly — every shard contributes its share of
                # most-recent events (the first ``limit % shards`` shards
                # take the remainder), concatenated in shard order, the
                # same rule the Redis client uses for per-shard AOFs.
                logs = self._shard_csvlogs
                events: list[AuditEvent] = []
                for index, logger in enumerate(logs):
                    share = limit
                    if limit:
                        share = limit // len(logs) + (1 if index < limit % len(logs) else 0)
                        if share == 0:
                            continue
                    events.extend(self._events_from_lines(logger.tail(share)))
                return events
            # Time-ranged investigation: csvlog lines carry timestamps,
            # so the per-shard trails merge into one global order.
            events = []
            for logger in self._shard_csvlogs:
                events.extend(events_from_csvlog(logger, start, end))
            events.sort(key=lambda event: event.timestamp)
            return events[-limit:]
        if self.db.csvlog is None:
            return []
        if start is None and end is None:
            # Fast path: recent-activity probe, bounded tail read.
            return self._events_from_lines(self.db.csvlog.tail(limit))
        events = events_from_csvlog(self.db.csvlog, start, end)
        return events[-limit:]

    def _record_exists(self, key: str) -> bool:
        return self.db.count(RECORDS_TABLE, Cmp("key", "=", key)) > 0

    # ------------------------------------------------------------------
    # YCSB primitives
    # ------------------------------------------------------------------

    #: G 5(1e): with timely deletion on, even YCSB rows carry an expiry,
    #: and the sweeper daemon patrols the usertable — the paper's TTL cost.
    YCSB_TTL_SECONDS = 5 * 86400.0

    def _ensure_ycsb_table(self) -> None:
        if self._ycsb_ready:
            return
        with self._ycsb_ddl_lock:
            if self._ycsb_ready:
                return
            self._create_ycsb_table()
            self._ycsb_ready = True

    def _create_ycsb_table(self) -> None:
        if YCSB_TABLE not in self.db.catalog.tables():
            columns = [Column("key", TEXT, nullable=False)] + [
                Column(f"field{i}", TEXT) for i in range(YCSB_FIELDS)
            ]
            if self.features.timely_deletion:
                columns.append(Column("expiry", TIMESTAMP))
            self.db.create_table(YCSB_TABLE, columns, primary_key="key")
        # recovered from a durable WAL: the table replayed already, but the
        # sweeper daemon is in-memory state and needs (re-)attaching
        if self.features.timely_deletion:
            schema = self.db.catalog.table(YCSB_TABLE)
            if "expiry" not in schema.column_names():
                # a durable store written without timely_deletion has no
                # expiry column to sweep; refuse loudly rather than run
                # with a feature flag that cannot be honoured
                raise ConfigurationError(
                    f"durable store at {self._data_dir!r} was created without "
                    "timely_deletion; its usertable has no expiry column"
                )
            self.db.enable_ttl(YCSB_TABLE, "expiry")

    def ycsb_insert(self, key: str, fields: dict) -> None:
        self._ensure_ycsb_table()
        self._wire(("insert", key))
        row = {"key": key, **fields}
        if self.features.timely_deletion:
            row["expiry"] = self.clock.now() + self.YCSB_TTL_SECONDS
        self.db.insert(YCSB_TABLE, row)
        self._wire(True)

    def ycsb_read(self, key: str, fields: Sequence[str] | None = None) -> dict | None:
        self._ensure_ycsb_table()
        self._wire(("read", key))
        rows = self.db.select(
            YCSB_TABLE, Cmp("key", "=", key),
            columns=list(fields) if fields is not None else None,
        )
        out = rows[0] if rows else None
        self._wire(out)
        return out

    def ycsb_update(self, key: str, fields: dict) -> int:
        self._ensure_ycsb_table()
        self._wire(("update", key))
        changed = self.db.update(YCSB_TABLE, fields, Cmp("key", "=", key))
        self._wire(changed)
        return changed

    def ycsb_scan(self, start_key: str, count: int) -> list:
        self._ensure_ycsb_table()
        self._wire(("scan", start_key, count))
        rows = self.db.select(
            YCSB_TABLE, Cmp("key", ">=", start_key),
            order_by="key", limit=count,
        )
        self._wire(len(rows))
        return rows

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def personal_data_bytes(self) -> int:
        rows = self.db.select(RECORDS_TABLE, columns=["data"], _internal=True)
        return sum(len(row["data"].encode()) for row in rows)

    def total_db_bytes(self) -> int:
        return self.db.disk_usage()["total_bytes"]

    def record_count(self) -> int:
        return self.db.count(RECORDS_TABLE)

    def close(self) -> None:
        for logger in self._shard_csvlogs:
            logger.close()
        self.db.close()
        if self._owns_dir:
            shutil.rmtree(self._data_dir, ignore_errors=True)
