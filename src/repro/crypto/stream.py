"""Pure-Python stream cipher used to simulate LUKS (at rest) and TLS (in transit).

The paper adds encryption to Redis via LUKS and Stunnel, and to PostgreSQL
via LUKS and SSL, and measures a ~10-20% throughput cost.  We reproduce the
*cost structure* — genuine CPU work proportional to the number of bytes
crossing the storage or network boundary — with a small ChaCha-style ARX
keystream generator.  It is NOT intended to be cryptographically reviewed;
it exists so that "encryption on" means real per-byte work, not a sleep().
"""

from __future__ import annotations

import hashlib
import struct

_MASK = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


class StreamCipher:
    """ChaCha-like keystream XOR cipher with an 8-round core.

    Deterministic for a (key, nonce) pair; encrypt and decrypt are the same
    operation.  The block function is the dominant cost and scales linearly
    with payload size, matching the overhead model of disk/wire encryption.
    """

    BLOCK = 64  # bytes of keystream per core invocation

    def __init__(self, key: bytes, nonce: int = 0) -> None:
        if not key:
            raise ValueError("empty key")
        digest = hashlib.sha256(key).digest()
        self._key_words = list(struct.unpack("<8I", digest))
        self._nonce = nonce & _MASK

    def _block(self, counter: int) -> bytes:
        state = (
            [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574]
            + self._key_words
            + [counter & _MASK, (counter >> 32) & _MASK, self._nonce, 0]
        )
        working = list(state)
        for _ in range(4):  # 8 rounds = 4 double-rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        out = [(w + s) & _MASK for w, s in zip(working, state)]
        return struct.pack("<16I", *out)

    def keystream(self, length: int, counter: int = 0) -> bytes:
        blocks = []
        produced = 0
        while produced < length:
            blocks.append(self._block(counter))
            counter += 1
            produced += self.BLOCK
        return b"".join(blocks)[:length]

    def apply(self, data: bytes, counter: int = 0) -> bytes:
        """XOR ``data`` with the keystream (symmetric encrypt/decrypt)."""
        if not data:
            return b""
        stream = self.keystream(len(data), counter)
        return xor_bytes(data, stream)


def xor_bytes(data: bytes, stream: bytes) -> bytes:
    """Constant-factor-fast XOR of two equal-length byte strings."""
    n = len(data)
    return (int.from_bytes(data, "little") ^ int.from_bytes(stream[:n], "little")).to_bytes(
        n, "little"
    )


class KeystreamPool:
    """Precomputed keystream shared by many small encrypt operations.

    Real deployments get LUKS/TLS encryption from AES-NI at GB/s, so the
    per-value cost is small but proportional to payload size.  Running the
    ARX core per value in pure Python would be orders of magnitude more
    expensive than the store operations it wraps and would distort the
    overhead ratios the paper measures.  Instead we expand the cipher once
    into a pool and give each object a deterministic offset into it —
    per-byte work stays real (the XOR walks every byte) but cheap.
    """

    def __init__(self, key: bytes, nonce: int, size: int = 1 << 16) -> None:
        if size <= 0:
            raise ValueError("pool size must be positive")
        self._pool = StreamCipher(key, nonce).keystream(size)
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def slice(self, offset: int, length: int) -> bytes:
        """``length`` bytes of keystream starting at ``offset``, wrapping."""
        offset %= self._size
        chunk = self._pool[offset:offset + length]
        while len(chunk) < length:
            chunk += self._pool[: length - len(chunk)]
        return chunk

    def apply(self, data: bytes, offset: int) -> bytes:
        """XOR ``data`` against the pool at ``offset`` (symmetric)."""
        if not data:
            return b""
        return xor_bytes(data, self.slice(offset, len(data)))
