"""Simulated LUKS (at-rest) and TLS (in-transit) encryption boundaries."""

from .luks import AtRestCipher, NullAtRestCipher
from .stream import KeystreamPool, StreamCipher, xor_bytes
from .tls import ChannelError, LoopbackSecureLink, SecureChannel

__all__ = [
    "StreamCipher",
    "KeystreamPool",
    "xor_bytes",
    "AtRestCipher",
    "NullAtRestCipher",
    "SecureChannel",
    "LoopbackSecureLink",
    "ChannelError",
]
