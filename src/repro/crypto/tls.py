"""In-transit encryption wrapper — the Stunnel / SSL analogue.

The paper fronts Redis with Stunnel and runs PostgreSQL with SSL in
verify-CA mode.  Every client<->server message therefore pays a per-byte
encryption cost plus small framing overhead.  :class:`SecureChannel` sits
between the benchmark client stubs and the engines: requests and responses
are serialised, framed, encrypted with independent sequence counters per
direction, and decrypted on the other side.

The engines never see the channel — exactly like a real proxy — so turning
TLS on/off is purely a client-stub configuration, matching Section 5.
"""

from __future__ import annotations

import struct
import threading

from .stream import KeystreamPool


class ChannelError(Exception):
    """Frame corruption or sequence mismatch on the simulated channel."""


class SecureChannel:
    """Symmetric encrypted pipe with per-direction sequence counters."""

    _HEADER = struct.Struct("<QI")  # sequence, length

    def __init__(self, key: bytes = b"repro-tls-default-key") -> None:
        self._tx = KeystreamPool(key, nonce=0x544C5331)  # 'TLS1'
        self._rx = self._tx  # symmetric link: both ends share the pool
        self._tx_seq = 0
        self._rx_seq = 0

    @staticmethod
    def _offset(seq: int) -> int:
        # Spread consecutive frames across the pool so adjacent messages do
        # not reuse the exact same keystream window.
        return (seq * 8191) & 0xFFFFFFFF

    def wrap(self, payload: bytes) -> bytes:
        """Frame + encrypt an outgoing message."""
        header = self._HEADER.pack(self._tx_seq, len(payload))
        body = self._tx.apply(payload, offset=self._offset(self._tx_seq))
        self._tx_seq += 1
        return header + body

    def unwrap(self, frame: bytes) -> bytes:
        """Decrypt + verify an incoming message produced by :meth:`wrap`."""
        if len(frame) < self._HEADER.size:
            raise ChannelError("short frame")
        seq, length = self._HEADER.unpack_from(frame)
        if seq != self._rx_seq:
            raise ChannelError(f"sequence mismatch: got {seq}, want {self._rx_seq}")
        body = frame[self._HEADER.size:]
        if len(body) != length:
            raise ChannelError("length mismatch")
        plain = self._rx.apply(body, offset=self._offset(seq))
        self._rx_seq += 1
        return plain


class LoopbackSecureLink:
    """A client-side + server-side channel pair joined back to back.

    ``to_server()`` models one request crossing the wire (client wraps,
    server unwraps); ``to_client()`` the response.  With ``enabled=False``
    the payload passes through untouched, modelling a plaintext socket.

    Channels carry per-direction sequence counters, so — exactly like real
    TLS — a connection belongs to one thread.  The link keeps one channel
    pair per calling thread (the YCSB model: one connection per worker).
    """

    def __init__(self, key: bytes = b"repro-tls-default-key", enabled: bool = True) -> None:
        self.enabled = enabled
        self._key = key
        if enabled:
            self._local = threading.local()

    def _channels(self) -> tuple[SecureChannel, SecureChannel]:
        channels = getattr(self._local, "channels", None)
        if channels is None:
            channels = (SecureChannel(self._key), SecureChannel(self._key + b"/resp"))
            self._local.channels = channels
        return channels

    def to_server(self, payload: bytes) -> bytes:
        if not self.enabled:
            return payload
        request, _ = self._channels()
        return request.unwrap(request.wrap(payload))

    def to_client(self, payload: bytes) -> bytes:
        if not self.enabled:
            return payload
        _, response = self._channels()
        return response.unwrap(response.wrap(payload))
