"""At-rest encryption wrapper — the LUKS analogue.

The paper puts Redis' and PostgreSQL's data directories on a LUKS-encrypted
block device: every byte persisted or loaded passes through the cipher.  We
model the same boundary: an :class:`AtRestCipher` that the storage engines
call on the value payloads they keep in their heaps and on every byte they
write to their persistence files (AOF / WAL / csvlog).

Each value gets its own deterministic offset into a precomputed keystream
pool (see :class:`~repro.crypto.stream.KeystreamPool` for why pooling is the
right cost model), so re-encrypting one value never disturbs another.
"""

from __future__ import annotations

import zlib

from .stream import KeystreamPool


class AtRestCipher:
    """Encrypt/decrypt value payloads at the storage boundary."""

    enabled = True

    def __init__(self, key: bytes = b"repro-luks-default-key") -> None:
        self._pool = KeystreamPool(key, nonce=0x4C554B53)  # 'LUKS'

    def seal(self, token: str, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` stored under identifier ``token``."""
        return self._pool.apply(plaintext, offset=zlib.crc32(token.encode()))

    def open(self, token: str, ciphertext: bytes) -> bytes:
        """Decrypt a payload previously sealed under ``token``."""
        return self._pool.apply(ciphertext, offset=zlib.crc32(token.encode()))


class FileCipher:
    """Offset-addressed encryption for append-only files — the dm-crypt view.

    LUKS encrypts a block device: every byte written to a persistence file
    (AOF / WAL / csvlog) is ciphered at its absolute file offset, and reads
    decrypt at the same offset.  Because the keystream pool wraps, any
    window of the file can be decrypted independently given its offset —
    which is exactly how sector-addressed disk encryption behaves.
    """

    enabled = True

    def __init__(self, key: bytes = b"repro-luks-default-key") -> None:
        self._pool = KeystreamPool(key, nonce=0x4C554B46)  # 'LUKF'

    def apply(self, data: bytes, offset: int) -> bytes:
        """Encrypt/decrypt ``data`` located at absolute file ``offset``."""
        return self._pool.apply(data, offset)


class NullAtRestCipher(AtRestCipher):
    """No-op cipher used when the encryption feature is disabled."""

    enabled = False

    def __init__(self) -> None:  # no key, no pool
        pass

    def seal(self, token: str, plaintext: bytes) -> bytes:
        return plaintext

    def open(self, token: str, ciphertext: bytes) -> bytes:
        return ciphertext
