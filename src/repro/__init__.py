"""repro — reproduction of "Understanding and Benchmarking the Impact of
GDPR on Database Systems" (Shastri et al., VLDB 2020).

Subpackages
-----------
``repro.common``      clocks, request distributions, statistics
``repro.crypto``      simulated LUKS (at-rest) / TLS (in-transit) boundaries
``repro.minikv``      Redis-like in-memory KV store (lazy TTL, AOF)
``repro.minisql``     PostgreSQL-like relational engine (B-tree indices,
                      WAL, csvlog, TTL sweeper daemon)
``repro.gdpr``        personal-data record model, GDPR query taxonomy,
                      compliance features, audit, access control
``repro.clients``     DB interface layer: one GDPR client stub per engine
``repro.bench``       GDPRbench + YCSB workloads, runtime engine, metrics
``repro.experiments`` one module per paper figure/table
"""

__version__ = "1.0.0"
